"""Unified engine contracts: ``Engine`` protocol, ``EngineRunResult``
base, and the backend registry.

Before this module the three machines exposed three incompatible
``*RunResult`` shapes and the host :class:`~repro.host.Device` chose a
backend with an ``if/elif`` chain.  Now:

* :class:`Engine` is the structural protocol every execution backend
  satisfies: construct with an optional config, then
  ``run(kernel, memory, params, n_threads, *, watchdog=None,
  faults=None, tracer=None, metrics=None)``;
* :class:`EngineRunResult` is the common result base.  Subclasses
  (``VGIWRunResult``, ``FermiRunResult``, ``SGMFRunResult``) keep every
  historical field and field *order* — the base contributes the shared
  contract (``kernel_name``, ``n_threads``, ``cycles``, ``l1``/``l2``
  :class:`~repro.memory.cache.CacheStats`,
  :class:`~repro.memory.dram.DRAMStats` ``dram``) plus the
  observability attachments ``trace`` / ``metrics`` and shared derived
  properties;
* :func:`register_engine` / :func:`create_engine` form a registry keyed
  by backend name (``"vgiw"``, ``"fermi"``, ``"sgmf"``, ``"interp"``),
  so new backends plug into :class:`~repro.host.Device` without
  touching its dispatch.

The built-in engines register lazily (module-path strings) to keep this
module import-cycle-free: engine modules import ``repro.engine`` for
the result base.

Crash-safe execution (PR 5) adds the **snapshot contract**: the three
timing engines mix in :class:`CheckpointMixin`, which defines
``snapshot()`` / ``restore()`` / ``resume()`` over an engine-owned
*state dict* captured at a quiescent scheduling boundary (between block
executions for VGIW, between heap events for Fermi, between thread
injections for SGMF).  A snapshot is one pickle of that dict —
register files, LVC lines, token windows, SIMT stacks, cache/DRAM/MSHR
state, cycle counters, watchdog and fault-injector state — so shared
references (executor ↔ memory system ↔ tracer) survive the round trip
and a restored run is cycle- and memory-image-identical to an
uninterrupted one.  Derived lookup structures that hold function
objects (exec plans, instruction tables) are deliberately *excluded*
and rebuilt deterministically on restore; see each engine's
``_after_restore``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Dict, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.resilience.errors import ReproError

__all__ = [
    "CheckpointMixin",
    "Checkpointer",
    "Engine",
    "EngineRunResult",
    "EngineSnapshot",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "UnknownEngineError",
    "create_engine",
    "engine_names",
    "register_engine",
    "unknown_engine_error",
]

Number = Union[int, float, bool]


# ----------------------------------------------------------------------
# Result base
# ----------------------------------------------------------------------
class EngineRunResult:
    """Common base of every timing engine's run result.

    Contract (every subclass provides these attributes):

    ``kernel_name``  the launched kernel's name
    ``n_threads``    launch width
    ``cycles``       end-to-end simulated cycles
    ``l1`` / ``l2``  :class:`~repro.memory.cache.CacheStats`
    ``dram``         :class:`~repro.memory.dram.DRAMStats`

    The base is deliberately *not* a dataclass: the concrete results
    are dataclasses whose historical field order (and therefore
    positional-construction surface) must not change, so the shared
    fields stay declared in the subclasses and the base contributes the
    contract, the observability attachments, and derived properties.

    ``trace`` / ``metrics`` default to ``None`` (class attributes) and
    are attached by the engine via :meth:`attach_obs` when a tracer or
    metrics registry was passed to ``run``.
    """

    #: engine name, overridden per subclass ("vgiw", "fermi", "sgmf")
    engine: str = "?"
    #: :class:`repro.obs.Tracer` used during the run (or None)
    trace = None
    #: :class:`repro.obs.Metrics` populated during the run (or None)
    metrics = None

    REQUIRED_ATTRS: Tuple[str, ...] = (
        "kernel_name", "n_threads", "cycles", "l1", "l2", "dram",
    )

    def attach_obs(self, tracer=None, metrics=None) -> "EngineRunResult":
        """Attach the run's tracer / metrics registry (chainable)."""
        if tracer is not None:
            self.trace = tracer
        if metrics is not None:
            self.metrics = metrics
        return self

    # -- shared derived properties -------------------------------------
    @property
    def dram_accesses(self) -> int:
        return self.dram.accesses

    @property
    def l1_hit_rate(self) -> float:
        return self.l1.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate

    def memory_summary(self) -> Dict[str, float]:
        """The shared memory-hierarchy counters as a flat dict (the
        same quantities :func:`repro.obs.record_shared_run_metrics`
        publishes into the shared counter namespace)."""
        return {
            "l1.accesses": self.l1.accesses,
            "l1.misses": self.l1.misses,
            "l2.accesses": self.l2.accesses,
            "l2.misses": self.l2.misses,
            "dram.reads": self.dram.reads,
            "dram.writes": self.dram.writes,
            "dram.row_activations": self.dram.row_misses,
        }

    def summary(self) -> Dict[str, Any]:
        """Engine-agnostic run summary (uniform across backends)."""
        out: Dict[str, Any] = {
            "engine": self.engine,
            "kernel": self.kernel_name,
            "n_threads": self.n_threads,
            "cycles": self.cycles,
        }
        out.update(self.memory_summary())
        return out


# ----------------------------------------------------------------------
# Snapshots: the crash-safe engine contract
# ----------------------------------------------------------------------
#: Bump when any engine's state-dict schema changes; ``restore``
#: refuses snapshots from another version instead of resuming garbage.
SNAPSHOT_VERSION = 1


class SnapshotError(ReproError):
    """A snapshot cannot be taken, loaded, or restored."""


@dataclass
class EngineSnapshot:
    """A self-contained, picklable checkpoint of one engine run.

    ``payload`` is a single pickle of the engine's state dict, taken at
    a quiescent scheduling boundary.  It embeds everything ``resume``
    needs — including the compiled kernel / mapping and the memory
    image — so a snapshot restores in a *fresh process* without access
    to the original kernel objects.
    """

    engine: str
    kernel_name: str
    cycle: float
    payload: bytes
    version: int = SNAPSHOT_VERSION

    def state(self) -> Dict[str, Any]:
        """Decode the payload (a fresh copy each call)."""
        return pickle.loads(self.payload)

    def save(self, path: str) -> None:
        """Atomically persist the snapshot to ``path``."""
        from repro.resilience.atomicio import atomic_pickle

        atomic_pickle(path, self)

    @staticmethod
    def load(path: str) -> "EngineSnapshot":
        """Load a snapshot written by :meth:`save`."""
        with open(path, "rb") as fh:
            snap = pickle.load(fh)
        if not isinstance(snap, EngineSnapshot):
            raise SnapshotError(
                f"{path} does not contain an EngineSnapshot "
                f"(got {type(snap).__name__})"
            )
        return snap

    def __repr__(self) -> str:
        return (f"EngineSnapshot(engine={self.engine!r}, "
                f"kernel={self.kernel_name!r}, cycle={self.cycle:.0f}, "
                f"{len(self.payload)} payload bytes)")


class Checkpointer:
    """Periodic-checkpoint schedule for an engine run loop.

    ``every`` is in simulated cycles; the engine asks :meth:`due` at
    each scheduling boundary and calls :meth:`taken` after emitting, so
    a long-running boundary skips forward past every missed deadline
    instead of emitting a burst.
    """

    __slots__ = ("every", "sink", "next_due")

    def __init__(self, every: float,
                 sink: Optional[Callable[["EngineSnapshot"], None]] = None,
                 start: float = 0.0):
        if every <= 0:
            raise SnapshotError(
                f"checkpoint_every must be positive: {every}"
            )
        self.every = float(every)
        self.sink = sink
        self.next_due = start + self.every

    def due(self, cycle: float) -> bool:
        return cycle >= self.next_due

    def taken(self, cycle: float) -> None:
        while self.next_due <= cycle:
            self.next_due += self.every


class CheckpointMixin:
    """Shared ``snapshot()`` / ``restore()`` / ``resume()`` surface.

    A concrete engine provides:

    * ``engine`` — its registry name (stamped into snapshots);
    * ``_drive(state, checkpointer)`` — run the state dict to
      completion and return the engine's result object;
    * ``_after_restore(state)`` — rebuild the derived, unpicklable
      structures (exec plans, instruction tables) from restored state.

    The mixin keeps ``_state`` pointing at the live state dict while a
    run is in flight (cleared on completion), ``last_snapshot`` at the
    most recent checkpoint (useful when a watchdog or wall-clock
    timeout killed the run afterwards), and ``last_memory`` at the
    memory image the most recent run mutated (the restored copy, after
    ``resume`` — callers comparing memory images need it because a
    restored run operates on the snapshot's embedded image, not the
    caller's original object).
    """

    engine: str = "?"

    _state: Optional[Dict[str, Any]] = None
    last_snapshot: Optional[EngineSnapshot] = None
    last_memory = None

    # -- hooks ---------------------------------------------------------
    def _drive(self, state: Dict[str, Any],
               checkpointer: Optional[Checkpointer]):
        raise NotImplementedError

    def _after_restore(self, state: Dict[str, Any]) -> None:
        """Rebuild derived structures; default: nothing to rebuild."""

    # -- contract ------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Capture the in-flight run's state at the current boundary.

        Only meaningful at a quiescent scheduling boundary — engines
        call this from their checkpoint sites; callers normally receive
        snapshots through ``checkpoint_sink`` rather than calling this
        directly.
        """
        state = self._state
        if state is None:
            raise SnapshotError(
                f"{self.engine}: no run in flight to snapshot"
            )
        return EngineSnapshot(
            engine=self.engine,
            kernel_name=state["kernel_name"],
            cycle=float(state["clock"]),
            payload=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self, snap: EngineSnapshot) -> None:
        """Adopt ``snap`` as this engine's in-flight run state."""
        if snap.engine != self.engine:
            raise SnapshotError(
                f"cannot restore a {snap.engine!r} snapshot into a "
                f"{self.engine!r} engine"
            )
        if snap.version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {snap.version} != supported "
                f"{SNAPSHOT_VERSION}", kernel=snap.kernel_name,
            )
        state = snap.state()
        self._after_restore(state)
        self._state = state

    def resume(self, *, checkpoint_every: Optional[float] = None,
               checkpoint_sink: Optional[Callable[[EngineSnapshot], None]]
               = None):
        """Run the restored (or interrupted) state to completion.

        Returns the same result type as ``run``; cycle counts and the
        final memory image (``last_memory``) are identical to an
        uninterrupted run.
        """
        state = self._state
        if state is None:
            raise SnapshotError(
                f"{self.engine}: no restored state to resume "
                f"(call restore() first)"
            )
        ck = None
        if checkpoint_every is not None:
            ck = Checkpointer(checkpoint_every, checkpoint_sink,
                              start=float(state["clock"]))
        return self._drive(state, ck)

    # -- checkpoint emission (engine-side helper) ----------------------
    def _emit_checkpoint(self, ck: Optional[Checkpointer]) -> None:
        snap = self.snapshot()
        self.last_snapshot = snap
        if ck is not None:
            if ck.sink is not None:
                ck.sink(snap)
            ck.taken(snap.cycle)


# ----------------------------------------------------------------------
# Engine protocol
# ----------------------------------------------------------------------
@runtime_checkable
class Engine(Protocol):
    """Structural protocol every execution backend satisfies.

    Engines are constructed with an optional architecture config
    (``VGIWCore(config)``, ``FermiSM(config)``, ...) and expose
    ``run`` with the uniform keyword surface below.  Extra
    engine-specific keywords (``profile=``, ``max_block_executions=``)
    are allowed; the protocol names the portable subset.
    """

    def run(
        self,
        kernel,
        memory,
        params: Dict[str, Number],
        n_threads: int,
        *,
        watchdog=None,
        faults=None,
        tracer=None,
        metrics=None,
    ):  # pragma: no cover - structural declaration only
        ...


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
class UnknownEngineError(KeyError):
    """Backend name not present in the engine registry.

    ``KeyError.__str__`` would wrap the message in quotes (it renders
    the missing *key*); the override keeps the rendered message usable
    verbatim, so :class:`~repro.host.Device` can surface it unchanged.
    """

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


def unknown_engine_error(name: str) -> UnknownEngineError:
    """Build the registry's unknown-backend error for ``name``.

    The message lists every registered backend and, when the name looks
    like a typo of one of them, the nearest match.  Shared by
    :func:`create_engine` and :class:`~repro.host.Device` so the two
    entry points report identically.
    """
    import difflib

    names = engine_names()
    message = (f"unknown backend {name!r}; registered engines: "
               f"{', '.join(names)}")
    close = difflib.get_close_matches(name, names, n=1, cutoff=0.5)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return UnknownEngineError(message)


#: name -> factory(config) -> engine instance
_REGISTRY: Dict[str, Callable[[Optional[Any]], Any]] = {}

#: built-in backends, loaded lazily to avoid import cycles
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "vgiw": ("repro.vgiw.core", "VGIWCore"),
    "fermi": ("repro.simt.sm", "FermiSM"),
    "sgmf": ("repro.sgmf.core", "SGMFCore"),
    "interp": ("repro.engine", "InterpEngine"),
}


def register_engine(name: str,
                    factory: Optional[Callable[[Optional[Any]], Any]] = None):
    """Register backend ``name``; usable as a decorator.

    ``factory(config)`` must return an object satisfying
    :class:`Engine`.  Classes whose ``__init__`` takes one optional
    config argument can be registered directly::

        @register_engine("mycore")
        class MyCore: ...
    """
    def _register(fac):
        _REGISTRY[name] = fac
        return fac

    if factory is None:
        return _register
    return _register(factory)


def engine_names() -> Tuple[str, ...]:
    """All registered backend names (built-ins included)."""
    return tuple(sorted(set(_BUILTIN) | set(_REGISTRY)))


def create_engine(name: str, config: Optional[Any] = None):
    """Instantiate the backend registered under ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        builtin = _BUILTIN.get(name)
        if builtin is None:
            raise unknown_engine_error(name)
        module, attr = builtin
        factory = getattr(import_module(module), attr)
        _REGISTRY[name] = factory
    return factory(config)


# ----------------------------------------------------------------------
# Interpreter adapter
# ----------------------------------------------------------------------
class InterpEngine:
    """Adapts the reference interpreter to the :class:`Engine` surface.

    The interpreter has no timing model, so ``watchdog`` and ``tracer``
    hooks are accepted-and-ignored (``faults`` too — the interpreter is
    the golden model and must stay exact).  The returned
    :class:`~repro.interp.interpreter.InterpResult` gains the
    ``trace`` / ``metrics`` attachments for a uniform launch surface.
    """

    def __init__(self, config: Optional[Any] = None):
        self.config = config

    def run(self, kernel, memory, params, n_threads, *,
            watchdog=None, faults=None, tracer=None, metrics=None):
        from repro.interp import interpret

        result = interpret(kernel, memory, params, n_threads)
        result.trace = tracer
        result.metrics = metrics
        if metrics is not None:
            scope = metrics.scope("interp")
            scope.inc("run.threads", n_threads)
            scope.inc("run.instructions", result.total_instructions)
        return result
