"""Fermi-class SIMT GPGPU baseline."""

from repro.simt.simtstack import EXIT, SIMTStack, SIMTStackError, StackEntry
from repro.simt.sm import FermiRunResult, FermiSM, SMStats
from repro.simt.warp import LaneMemOp, Warp

__all__ = [
    "EXIT",
    "FermiRunResult",
    "FermiSM",
    "LaneMemOp",
    "SIMTStack",
    "SIMTStackError",
    "SMStats",
    "StackEntry",
    "Warp",
]
