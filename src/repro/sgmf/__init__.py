"""SGMF dataflow GPGPU baseline (ISCA 2014)."""

from repro.sgmf.core import SGMFCore, SGMFRunResult
from repro.sgmf.mapping import (
    SGMFMapping,
    SGMFUnmappableError,
    build_sgmf_dfgs,
    kernel_demand,
    map_kernel,
)

__all__ = [
    "SGMFCore",
    "SGMFMapping",
    "SGMFRunResult",
    "SGMFUnmappableError",
    "build_sgmf_dfgs",
    "kernel_demand",
    "map_kernel",
]
