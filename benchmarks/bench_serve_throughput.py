"""Serve throughput: the batched service vs a serial run_kernel loop.

The serving layer's headline claim (``docs/serving.md``): a 2-worker
warm pool answering a seeded request stream over Table 2 kernels at
``--scale small`` sustains **>= 2.5x** the throughput of the historical
client pattern — a serial loop calling ``run_kernel`` once per request
— while returning byte-identical per-request results (equal
``result_digest``).  On the single-core measurement host the win comes
from request coalescing (equal requests share one execution) and the
workers' warm compile caches, not from parallelism.

Two gates:

* ``bench_serve_committed_record`` — the measured record in
  ``BENCH_simulator_performance.json`` (key ``"serve"``) clears the
  floor and carries the p50/p99 latency split;
* ``bench_serve_live_digest_identity`` — a live (cheap, ``tiny``-scale)
  serve run reproduces the serial digests bit-for-bit.

Re-measure and print a fresh record with::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --remeasure
"""

import json
import os
import time

from repro.evalharness import RunOptions, run_kernel
from repro.serve import ExecutionService, LoadGen, result_digest

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(
    os.path.dirname(_HERE), "BENCH_simulator_performance.json"
)

#: The measured stream: Table 2 kernels at the paper's ``small`` scale.
STREAM_KERNELS = ("nn/euclid", "gaussian/Fan1", "hotspot/hotspot_kernel")
N_REQUESTS = 40
SEED = 0
WORKERS = 2
CONCURRENCY = 16

#: Acceptance floor: serve throughput over the serial run_kernel loop.
MIN_SERVE_SPEEDUP = 2.5


def load_baseline():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Gate 1: the committed record
# ----------------------------------------------------------------------
def bench_serve_committed_record():
    """The recorded serve measurement clears the 2.5x floor and carries
    the latency split."""
    doc = load_baseline()
    record = doc["serve"]["record"]
    floor = doc["serve"]["floors"]["speedup_serve"]
    assert floor >= MIN_SERVE_SPEEDUP
    speedup = record["serial_s"] / record["serve_s"]
    assert speedup >= floor, (
        f"serve speedup {speedup:.2f}x below the {floor}x floor"
    )
    # The recorded ratio stays consistent with the raw seconds.
    assert abs(record["speedup_serve"] - speedup) < 0.1
    assert record["golden"] == "byte-identical"
    # The p50/p99 latency split is recorded (host seconds).
    for component in ("total_s", "queue_s", "execute_s"):
        split = record["latency"][component]
        assert split["p50"] > 0
        assert split["p99"] >= split["p50"]


# ----------------------------------------------------------------------
# Gate 2: live identity (cheap: tiny scale, small stream)
# ----------------------------------------------------------------------
def bench_serve_live_digest_identity():
    """A live serve run's per-request digests equal serial run_kernel's."""
    options = RunOptions(scale="tiny")
    gen = LoadGen(list(STREAM_KERNELS), n_requests=8, options=options,
                  seed=SEED, mode="closed", concurrency=4)
    serial = {
        name: result_digest(run_kernel(name, options=options))
        for name in {req.kernel for req in gen.requests()}
    }
    with ExecutionService(workers=WORKERS) as svc:
        report = gen.run(svc)
    assert len(report.responses) == 8
    for req, resp in zip(gen.requests(), report.responses):
        assert resp.status == "ok", (req.kernel, resp.error)
        assert resp.digest == serial[req.kernel]


# ----------------------------------------------------------------------
# --remeasure: time both paths and print a fresh record
# ----------------------------------------------------------------------
def _remeasure() -> dict:
    import multiprocessing
    import platform

    options = RunOptions(scale="small")
    gen = LoadGen(list(STREAM_KERNELS), n_requests=N_REQUESTS,
                  options=options, seed=SEED, mode="closed",
                  concurrency=CONCURRENCY)
    stream = gen.requests()

    # Serial baseline: the historical client pattern — one run_kernel
    # call per request, no shared cache, results digested for identity.
    t0 = time.monotonic()
    serial_digests = [result_digest(run_kernel(req.kernel, options=options))
                      for req in stream]
    serial_s = time.monotonic() - t0

    # The service: 2-worker warm pool, closed-loop seeded clients.
    with ExecutionService(workers=WORKERS) as svc:
        report = gen.run(svc)
        stats = svc.stats()
    serve_s = report.wall_s

    assert all(r.status == "ok" for r in report.responses)
    identical = [r.digest for r in report.responses] == serial_digests
    latency = {name: {k: round(v, 4) for k, v in
                      report.latency(name).summary().items()}
               for name in ("total_s", "queue_s", "compile_s",
                            "execute_s")}
    return {
        "label": "remeasure",
        "date": time.strftime("%Y-%m-%d"),
        "host": (f"{multiprocessing.cpu_count()} cores, "
                 f"python {platform.python_version()}"),
        "requests": N_REQUESTS,
        "kernels": list(STREAM_KERNELS),
        "scale": "small",
        "workers": WORKERS,
        "concurrency": CONCURRENCY,
        "serial_s": round(serial_s, 2),
        "serve_s": round(serve_s, 2),
        "speedup_serve": round(serial_s / serve_s, 2),
        "latency": latency,
        "batches": stats["batches"]["count"],
        "mean_batch_size": round(stats["batches"]["mean_size"], 2),
        "golden": "byte-identical" if identical else "DIVERGED",
    }


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser()
    ap.add_argument("--remeasure", action="store_true",
                    help="time the serial loop and the 2-worker service "
                         "on the seeded stream; print a record for the "
                         "\"serve\" section of "
                         "BENCH_simulator_performance.json")
    args = ap.parse_args()
    if args.remeasure:
        print(json.dumps(_remeasure(), indent=2))
    else:
        ap.error("nothing to do (did you mean --remeasure, or "
                 "`pytest benchmarks/bench_serve_throughput.py`?)")
