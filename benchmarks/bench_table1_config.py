"""Paper Table 1: VGIW system configuration.

Regenerates the configuration table from the architecture dataclasses —
the values are the model's single source of truth, so this bench fails
if the implementation drifts from the paper's configuration.
"""

from repro.arch import FabricSpec, UnitKind, VGIWConfig
from repro.evalharness.experiments import table1_configuration


def bench_table1(benchmark):
    table = benchmark(table1_configuration)
    print()
    print(table.render())

    spec = FabricSpec()
    assert spec.total_units == 108
    assert spec.counts[UnitKind.COMPUTE] == 32
    assert spec.counts[UnitKind.SPECIAL] == 12
    assert spec.counts[UnitKind.LDST] == 16
    assert spec.counts[UnitKind.LVU] == 16
    assert spec.counts[UnitKind.SJU] == 16
    assert spec.counts[UnitKind.CVU] == 16
    assert spec.config_cycles == 34  # paper section 3.2
    cfg = VGIWConfig()
    assert cfg.lvc_size_bytes == 64 * 1024
    assert cfg.memory.l1_size_bytes == 64 * 1024
    assert cfg.memory.l1_banks == 32
    assert cfg.memory.l2_banks == 6
    assert cfg.memory.dram_channels == 6
