"""repro.serve: a batched multi-device execution service.

Accepts kernel-execution requests (:class:`SubmitRequest` →
:class:`Ticket` → :class:`RunResponse`), coalesces compatible requests
(same kernel, same :class:`~repro.evalharness.RunOptions` fingerprint)
into single executions on a pool of persistent warm workers, and sheds
overload as typed responses instead of exceptions.  ``python -m
repro.serve`` runs a seeded load generator against an in-process
service and prints a throughput/latency report.  See
``docs/serving.md``.
"""

from repro.serve.api import (
    RESPONSE_STATUSES,
    LatencyStats,
    RunResponse,
    SubmitRequest,
    Ticket,
    result_digest,
)
from repro.serve.loadgen import LoadGen, LoadReport
from repro.serve.scheduler import Batch, BatchScheduler, SCHED_POLICIES
from repro.serve.service import ExecutionService

__all__ = [
    "Batch",
    "BatchScheduler",
    "ExecutionService",
    "LatencyStats",
    "LoadGen",
    "LoadReport",
    "RESPONSE_STATUSES",
    "RunResponse",
    "SCHED_POLICIES",
    "SubmitRequest",
    "Ticket",
    "result_digest",
]
