"""Target-independent IR clean-up passes.

Applied once per kernel by the evaluation harness, before a kernel is
handed to *any* of the three machine models, so every architecture
executes the same instruction stream (the original toolchain gets this
for free from LLVM: dead-code elimination and FMA contraction happen
before PTX is emitted).

* :func:`eliminate_dead_code` — drops instructions whose results are
  never read (the structured builder leaves dead initialisers behind).
* :func:`fuse_fma` — contracts ``FADD(FMUL(a, b), c)`` into
  ``FMA(a, b, c)`` when the multiply's result has exactly one use.
  Arithmetic is double precision throughout the models, so contraction
  is exact and all machines stay bit-identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple, Union

from repro.ir.block import BasicBlock
from repro.ir.instr import EVAL, Instr, Op, result_dtype
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Reg, param_reg


def _use_counts(kernel: Kernel) -> Counter:
    uses: Counter = Counter()
    for block in kernel.blocks.values():
        for instr in block.instrs:
            for src in instr.srcs:
                if isinstance(src, Reg):
                    uses[src.name] += 1
        cond = block.terminator.cond
        if isinstance(cond, Reg):
            uses[cond.name] += 1
    return uses


def _def_counts(kernel: Kernel) -> Counter:
    defs: Counter = Counter()
    for block in kernel.blocks.values():
        for instr in block.instrs:
            if instr.dst is not None:
                defs[instr.dst] += 1
    return defs


def _rebuild(kernel: Kernel, blocks: Dict[str, BasicBlock]) -> Kernel:
    return Kernel(
        name=kernel.name,
        params=list(kernel.params),
        blocks=blocks,
        entry=kernel.entry,
        param_dtypes=dict(kernel.param_dtypes),
    )


def eliminate_dead_code(kernel: Kernel) -> Kernel:
    """Iteratively remove side-effect-free instructions whose destination
    register is never read anywhere in the kernel."""
    current = kernel
    while True:
        uses = _use_counts(current)
        changed = False
        blocks: Dict[str, BasicBlock] = {}
        for name, block in current.blocks.items():
            kept = []
            for instr in block.instrs:
                # Everything except STORE is side-effect-free (loads
                # cannot fault in this machine model), so any instruction
                # with an unread destination is dead.
                if instr.dst is not None and uses[instr.dst] == 0:
                    changed = True
                else:
                    kept.append(instr)
            blocks[name] = BasicBlock(name, kept, block.terminator)
        current = _rebuild(current, blocks)
        if not changed:
            return current


def fuse_fma(kernel: Kernel) -> Kernel:
    """Contract single-use FMUL feeding FADD into FMA, per block."""
    uses = _use_counts(kernel)
    defs = _def_counts(kernel)
    blocks: Dict[str, BasicBlock] = {}
    for name, block in kernel.blocks.items():
        instrs: list = list(block.instrs)
        producers: Dict[str, Tuple[int, Instr]] = {}
        for idx, instr in enumerate(instrs):
            if instr.dst is not None:
                producers[instr.dst] = (idx, instr)
        for idx, instr in enumerate(instrs):
            if instr is None or instr.op is not Op.FADD:
                continue
            for pos in (0, 1):
                src = instr.srcs[pos]
                if not isinstance(src, Reg):
                    continue
                prod = producers.get(src.name)
                if (
                    prod is not None
                    and prod[0] < idx
                    and instrs[prod[0]] is prod[1]  # multiply not yet fused away
                    and prod[1].op is Op.FMUL
                    and uses[src.name] == 1
                    and defs[src.name] == 1
                ):
                    mul_idx, mul = prod
                    other = instr.srcs[1 - pos]
                    instrs[idx] = Instr(
                        Op.FMA,
                        instr.dst,
                        (mul.srcs[0], mul.srcs[1], other),
                        instr.dtype,
                    )
                    instrs[mul_idx] = None
                    break
        blocks[name] = BasicBlock(
            name, [i for i in instrs if i is not None], block.terminator
        )
    return _rebuild(kernel, blocks)


def propagate_params(kernel: Kernel, params: Dict[str, Union[int, float]]
                     ) -> Kernel:
    """Substitute launch-parameter registers with immediates.

    On a VGIW machine, kernel parameters are configuration-time
    constants baked into unit configuration registers (paper §3.5), so
    specialising the IR on them before the per-launch compilation is
    faithful — and it exposes constant loop bounds to the unroller.
    """
    values = {
        param_reg(p).name: (
            float(params[p]) if kernel.param_dtypes[p] is DType.FLOAT
            else int(params[p])
        )
        for p in kernel.params
        if p in params
    }

    def subst(operand):
        if isinstance(operand, Reg) and operand.name in values:
            dtype = (
                DType.FLOAT
                if isinstance(values[operand.name], float)
                else DType.INT
            )
            return Imm(values[operand.name], dtype)
        return operand

    blocks: Dict[str, BasicBlock] = {}
    for name, block in kernel.blocks.items():
        instrs = [
            Instr(i.op, i.dst, tuple(subst(s) for s in i.srcs), i.dtype)
            for i in block.instrs
        ]
        term = block.terminator
        if term.cond is not None:
            from repro.ir.instr import Terminator

            term = Terminator(term.kind, subst(term.cond),
                              term.true_target, term.false_target)
        blocks[name] = BasicBlock(name, instrs, term)
    return _rebuild(kernel, blocks)


def fold_constants(kernel: Kernel) -> Kernel:
    """Evaluate pure instructions whose operands are all immediates, and
    forward single-block constant MOV chains into later operands."""
    blocks: Dict[str, BasicBlock] = {}
    for name, block in kernel.blocks.items():
        consts: Dict[str, Imm] = {}
        instrs = []
        for instr in block.instrs:
            srcs = tuple(
                consts.get(s.name, s) if isinstance(s, Reg) else s
                for s in instr.srcs
            )
            if (
                instr.op not in (Op.LOAD, Op.STORE)
                and instr.dst is not None
                and all(isinstance(s, Imm) for s in srcs)
            ):
                raw = EVAL[instr.op](*(s.value for s in srcs))
                if instr.dtype is DType.INT:
                    raw = int(raw)
                elif instr.dtype is DType.FLOAT:
                    raw = float(raw)
                else:
                    raw = bool(raw)
                folded = Imm(raw, instr.dtype)
                consts[instr.dst] = folded
                instrs.append(Instr(Op.MOV, instr.dst, (folded,), instr.dtype))
                continue
            if instr.dst is not None:
                consts.pop(instr.dst, None)
            instrs.append(Instr(instr.op, instr.dst, srcs, instr.dtype))
        blocks[name] = BasicBlock(name, instrs, block.terminator)
    return _rebuild(kernel, blocks)


def local_cse(kernel: Kernel) -> Kernel:
    """Block-local common-subexpression elimination.

    Pure instructions with identical (opcode, operands) reuse the first
    occurrence's result.  The table is value-based despite the non-SSA
    IR: an entry dies as soon as any register it mentions (source or
    result) is redefined.  Loads and stores are never merged — memory
    disambiguation is the join nodes' job, not this pass's.
    """
    blocks: Dict[str, BasicBlock] = {}
    for name, block in kernel.blocks.items():
        table: Dict[Tuple, str] = {}
        instrs = []
        for instr in block.instrs:
            key = None
            if instr.op not in (Op.LOAD, Op.STORE) and instr.dst is not None:
                key = (instr.op, instr.srcs)
                prev = table.get(key)
                if prev is not None:
                    instrs.append(
                        Instr(Op.MOV, instr.dst, (Reg(prev),), instr.dtype)
                    )
                    self_invalidate = instr.dst
                    table = {
                        k: v for k, v in table.items()
                        if v != self_invalidate
                        and not any(
                            isinstance(s, Reg) and s.name == self_invalidate
                            for s in k[1]
                        )
                    }
                    if prev != instr.dst:
                        table[key] = prev
                    continue
            if instr.dst is not None:
                # Kill every table entry that mentions the redefined reg.
                dst = instr.dst
                table = {
                    k: v for k, v in table.items()
                    if v != dst
                    and not any(
                        isinstance(s, Reg) and s.name == dst for s in k[1]
                    )
                }
            if key is not None:
                table[key] = instr.dst
            instrs.append(instr)
        blocks[name] = BasicBlock(name, instrs, block.terminator)
    return _rebuild(kernel, blocks)


def copy_propagate(kernel: Kernel) -> Kernel:
    """Block-local copy propagation: forward ``dst = MOV src-reg`` into
    later uses while both registers stay unredefined (makes the MOVs
    that CSE introduces dead, so DCE can drop them)."""
    blocks: Dict[str, BasicBlock] = {}
    for name, block in kernel.blocks.items():
        copies: Dict[str, str] = {}
        instrs = []
        for instr in block.instrs:
            srcs = tuple(
                Reg(copies[s.name]) if isinstance(s, Reg) and s.name in copies
                else s
                for s in instr.srcs
            )
            if instr.dst is not None:
                dst = instr.dst
                copies = {
                    a: b for a, b in copies.items() if a != dst and b != dst
                }
                if instr.op is Op.MOV and isinstance(srcs[0], Reg):
                    copies[dst] = srcs[0].name
            instrs.append(Instr(instr.op, instr.dst, srcs, instr.dtype))
        term = block.terminator
        if isinstance(term.cond, Reg) and term.cond.name in copies:
            from repro.ir.instr import Terminator

            term = Terminator(term.kind, Reg(copies[term.cond.name]),
                              term.true_target, term.false_target)
        blocks[name] = BasicBlock(name, instrs, term)
    return _rebuild(kernel, blocks)


def optimize_kernel(kernel: Kernel,
                    params: Optional[Dict[str, Union[int, float]]] = None,
                    unroll: bool = True) -> Kernel:
    """Standard pass order.

    Without ``params``: DCE, FMA contraction, DCE.  With ``params``
    (per-launch specialisation, as a VGIW configuration generator would
    do): parameter propagation and constant folding first, then loop
    unrolling of constant-trip loops, then the clean-up passes.
    """
    if params is not None:
        kernel = propagate_params(kernel, params)
        kernel = fold_constants(kernel)
        if unroll:
            from repro.compiler.unroll import unroll_loops

            kernel = eliminate_dead_code(kernel)
            kernel = unroll_loops(kernel)
            kernel = fold_constants(kernel)
    kernel = eliminate_dead_code(kernel)
    kernel = fuse_fma(kernel)
    kernel = local_cse(kernel)
    kernel = copy_propagate(kernel)
    return eliminate_dead_code(kernel)
