"""Content-addressed result cache: identity keys, tiers, validation.

The contracts under test (``docs/serving.md`` / ``docs/api.md``):

* :meth:`RunOptions.fingerprint` is a *content* key — equal options
  produce equal fingerprints in different processes (no ``repr``
  address leakage), and unkeyable objects raise a typed
  :class:`~repro.resilience.OptionKeyError` instead of silently
  producing a process-local key;
* cache hits replay the stored run byte-identically — same report,
  same digests — across serial, ``--jobs`` and serve executions;
* a corrupt, truncated or version-skewed disk entry is a *miss*
  (recovered by re-execution), never an exception or a wrong result;
* the seeded validation mode re-executes sampled hits and hard-fails
  on digest divergence (typed degraded response on the serve path).
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.evalharness import (
    RESULT_CACHE_VERSION,
    ResultCache,
    RunOptions,
    option_key,
    run_kernel,
    run_suite,
)
from repro.evalharness.report import generate_report
from repro.evalharness.resultcache import ResultCacheEntry
from repro.resilience import (
    FaultSpec,
    OptionKeyError,
    ResultCacheDivergenceError,
    RetryPolicy,
    WatchdogConfig,
)
from repro.serve import ExecutionService, SubmitRequest, result_digest

TINY = RunOptions(scale="tiny")
KERNELS = ["nn/euclid", "gaussian/Fan1"]


# ----------------------------------------------------------------------
# Identity: canonical option keys
# ----------------------------------------------------------------------
_FP_SNIPPET = (
    "from repro.evalharness import RunOptions\n"
    "from repro.resilience import RetryPolicy, WatchdogConfig\n"
    "opts = RunOptions(scale='small', verify=False,\n"
    "                  watchdog=WatchdogConfig(max_cycles=1e6),\n"
    "                  retry=RetryPolicy(max_attempts=3),\n"
    "                  timeout=2.5)\n"
    "print(opts.fingerprint())\n"
)


def _fingerprint_in_subprocess() -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), os.pardir, "src"),
         env.get("PYTHONPATH", "")])
    out = subprocess.run([sys.executable, "-c", _FP_SNIPPET], env=env,
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def test_fingerprint_stable_across_processes():
    """The acceptance contract: two identical requests built in two
    different processes key to the same fingerprint (the old
    ``repr``-based key leaked ``object at 0x...`` addresses for any
    config without a custom repr)."""
    opts = RunOptions(scale="small", verify=False,
                      watchdog=WatchdogConfig(max_cycles=1e6),
                      retry=RetryPolicy(max_attempts=3),
                      timeout=2.5)
    here = opts.fingerprint()
    assert here == _fingerprint_in_subprocess()
    assert here == _fingerprint_in_subprocess()
    assert " at 0x" not in here


def test_fingerprint_ignores_reporting_knobs(tmp_path):
    """Journal/jobs/cache-dir/trace knobs change *how* a sweep runs,
    not *what* it computes — they must not shift the identity key."""
    base = RunOptions(scale="tiny")
    dressed = base.replace(jobs=4, journal=str(tmp_path / "j.jsonl"),
                           cache_dir=str(tmp_path / "cc"),
                           result_cache_dir=str(tmp_path / "rc"),
                           validate_cache_fraction=0.5,
                           trace_path=str(tmp_path / "t.json"))
    assert base.fingerprint() == dressed.fingerprint()
    assert base.fingerprint() != base.replace(verify=False).fingerprint()


def test_fingerprint_canonicalizes_mapping_order():
    a = RunOptions(inject={"nn/euclid": FaultSpec(kind="token_corrupt"),
                           "gaussian/Fan1": FaultSpec(kind="mem_drop")})
    b = RunOptions(inject={"gaussian/Fan1": FaultSpec(kind="mem_drop"),
                           "nn/euclid": FaultSpec(kind="token_corrupt")})
    assert a.fingerprint() == b.fingerprint()


def test_option_key_rejects_default_repr_objects():
    with pytest.raises(OptionKeyError, match="object"):
        option_key(object())
    with pytest.raises(OptionKeyError, match="watchdog"):
        RunOptions(watchdog=object()).fingerprint()


# ----------------------------------------------------------------------
# Harness path: hits replay stored runs, byte-identically
# ----------------------------------------------------------------------
def test_run_kernel_hit_replays_identical_result(tmp_path):
    opts = TINY.replace(result_cache_dir=str(tmp_path))
    cold = run_kernel("nn/euclid", options=opts)
    warm = run_kernel("nn/euclid", options=opts)
    assert result_digest(cold) == result_digest(warm)
    files = [f for f in os.listdir(tmp_path) if f.endswith(".result.pkl")]
    assert len(files) == 1


def test_suite_warm_reports_byte_identical_across_jobs(tmp_path):
    """Cold sweep populates the cache; warm sweeps — serial *and*
    ``--jobs`` — replay it into byte-identical reports."""
    opts = TINY.replace(result_cache_dir=str(tmp_path))
    cold = generate_report(run_suite(KERNELS, options=opts), scale="tiny")
    warm = generate_report(run_suite(KERNELS, options=opts), scale="tiny")
    jobs = generate_report(run_suite(KERNELS, options=opts.replace(jobs=2)),
                           scale="tiny")
    assert warm == cold
    assert jobs == cold


def test_live_cache_object_is_shared_and_counted():
    rcache = ResultCache()
    opts = TINY.replace(result_cache=rcache)
    run_kernel("nn/euclid", options=opts)
    run_kernel("nn/euclid", options=opts)
    stats = rcache.stats()
    assert stats["misses"] == 1 and stats["stores"] == 1
    assert stats["hits"] == 1 and stats["entries"] == 1


# ----------------------------------------------------------------------
# Tolerant loader: corruption and version skew are misses
# ----------------------------------------------------------------------
def _entry_files(tmp_path):
    return sorted(str(tmp_path / f) for f in os.listdir(tmp_path)
                  if f.endswith(".result.pkl"))


def test_corrupt_disk_entry_is_a_miss_and_recovers(tmp_path):
    opts = TINY.replace(result_cache_dir=str(tmp_path))
    want = result_digest(run_kernel("nn/euclid", options=opts))
    (path,) = _entry_files(tmp_path)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    fresh = run_kernel("nn/euclid", options=opts)
    assert result_digest(fresh) == want
    # The poisoned file was removed and replaced by the re-execution.
    (repaired,) = _entry_files(tmp_path)
    with open(repaired, "rb") as fh:
        entry = pickle.load(fh)
    assert isinstance(entry, ResultCacheEntry)
    assert entry.digest == want


def test_version_skewed_entry_is_a_miss(tmp_path):
    opts = TINY.replace(result_cache_dir=str(tmp_path))
    run_kernel("nn/euclid", options=opts)
    (path,) = _entry_files(tmp_path)
    with open(path, "rb") as fh:
        entry = pickle.load(fh)
    entry.version = RESULT_CACHE_VERSION + 1
    with open(path, "wb") as fh:
        pickle.dump(entry, fh)
    rcache = ResultCache(cache_dir=str(tmp_path))
    key = os.path.basename(path)[: -len(".result.pkl")]
    assert rcache.get(key) is None
    assert rcache.disk_errors == 1
    assert not os.path.exists(path)


def test_mem_tier_lru_eviction():
    rcache = ResultCache(max_entries=2)

    class _Run:  # digest stub: avoids building three real runs
        name, n_threads = "stub", 1

    for key in ("k1", "k2", "k3"):
        entry = ResultCacheEntry(version=RESULT_CACHE_VERSION, key=key,
                                 kernel="stub", digest="d", run=_Run())
        rcache._insert(key, entry)
    assert len(rcache) == 2
    assert rcache.evictions == 1
    assert rcache.get("k1") is None  # the LRU entry was evicted
    assert rcache.get("k3") is not None


# ----------------------------------------------------------------------
# Validation: seeded sampling, hard failure on divergence
# ----------------------------------------------------------------------
def test_should_validate_is_deterministic_and_seeded():
    rcache = ResultCache()
    keys = [f"key-{i}" for i in range(200)]
    draw = [rcache.should_validate(k, 0.25, seed=7) for k in keys]
    again = [rcache.should_validate(k, 0.25, seed=7) for k in keys]
    other = [rcache.should_validate(k, 0.25, seed=8) for k in keys]
    assert draw == again
    assert draw != other
    assert 0 < sum(draw) < len(keys)
    assert all(rcache.should_validate(k, 1.0) for k in keys[:5])
    assert not any(rcache.should_validate(k, 0.0) for k in keys[:5])


def _poison_digest(tmp_path):
    (path,) = _entry_files(tmp_path)
    with open(path, "rb") as fh:
        entry = pickle.load(fh)
    entry.digest = "0" * 64
    with open(path, "wb") as fh:
        pickle.dump(entry, fh)


def test_validation_divergence_hard_fails_harness(tmp_path):
    opts = TINY.replace(result_cache_dir=str(tmp_path),
                        validate_cache_fraction=1.0)
    run_kernel("nn/euclid", options=opts)
    _poison_digest(tmp_path)
    with pytest.raises(ResultCacheDivergenceError, match="diverges"):
        run_kernel("nn/euclid", options=opts)


def test_validation_divergence_hard_fails_suite_even_isolated(tmp_path):
    """Divergence is never a degraded row — it impeaches every cached
    answer, so even an isolating sweep must abort."""
    opts = TINY.replace(result_cache_dir=str(tmp_path),
                        validate_cache_fraction=1.0, isolate=True)
    run_suite(["nn/euclid"], options=opts)
    _poison_digest(tmp_path)
    with pytest.raises(ResultCacheDivergenceError):
        run_suite(["nn/euclid"], options=opts)


def test_validation_clean_pass_counts(tmp_path):
    opts = TINY.replace(result_cache_dir=str(tmp_path),
                        validate_cache_fraction=1.0)
    want = result_digest(run_kernel("nn/euclid", options=opts))
    rcache = ResultCache(cache_dir=str(tmp_path))
    revalidated = run_kernel("nn/euclid", options=TINY.replace(
        result_cache=rcache, validate_cache_fraction=1.0))
    assert result_digest(revalidated) == want
    assert rcache.validations == 1 and rcache.divergences == 0


# ----------------------------------------------------------------------
# Serve path: admission-time hits, typed divergence
# ----------------------------------------------------------------------
def test_serve_warm_stream_is_cached_with_equal_digests(tmp_path):
    with ExecutionService(workers=1,
                          result_cache_dir=str(tmp_path)) as svc:
        cold = [svc.wait(svc.submit(SubmitRequest(k, TINY)), timeout=120)
                for k in KERNELS]
        warm = [svc.wait(svc.submit(SubmitRequest(k, TINY)), timeout=120)
                for k in KERNELS]
        stats = svc.stats()
    assert [r.status for r in cold] == ["ok", "ok"]
    assert [r.status for r in warm] == ["cached", "cached"]
    assert [r.digest for r in warm] == [r.digest for r in cold]
    assert all(r.batch_id is None for r in warm)
    assert stats["requests"]["cached"] == 2
    assert stats["result_cache"]["hits"] == 2
    assert stats["latency"]["cached_s"]["count"] == 2


def test_serve_hits_cross_service_through_disk_tier(tmp_path):
    with ExecutionService(workers=1,
                          result_cache_dir=str(tmp_path)) as svc:
        cold = svc.wait(svc.submit(SubmitRequest("nn/euclid", TINY)),
                        timeout=120)
    with ExecutionService(workers=1,
                          result_cache_dir=str(tmp_path)) as svc2:
        warm = svc2.wait(svc2.submit(SubmitRequest("nn/euclid", TINY)),
                         timeout=120)
        stats = svc2.stats()
    assert cold.status == "ok" and warm.status == "cached"
    assert warm.digest == cold.digest
    assert stats["result_cache"]["disk_hits"] == 1


def test_serve_validation_divergence_is_typed_degraded(tmp_path):
    with ExecutionService(workers=1,
                          result_cache_dir=str(tmp_path)) as svc:
        svc.wait(svc.submit(SubmitRequest("nn/euclid", TINY)), timeout=120)
    _poison_digest(tmp_path)
    with ExecutionService(workers=1, result_cache_dir=str(tmp_path),
                          validate_cache_fraction=1.0) as svc:
        resp = svc.wait(svc.submit(SubmitRequest("nn/euclid", TINY)),
                        timeout=120)
        stats = svc.stats()
    assert resp.status == "degraded"
    assert resp.error_type == "ResultCacheDivergenceError"
    assert "diverges" in resp.error
    assert stats["result_cache"]["divergences"] == 1


def test_serve_unkeyable_options_rejected_not_raised():
    polluted = TINY.replace(watchdog=object())
    with ExecutionService(workers=1) as svc:
        resp = svc.wait(svc.submit(SubmitRequest("nn/euclid", polluted)),
                        timeout=30)
    assert resp.status == "rejected"
    assert resp.error_type == "OptionKeyError"
    assert "watchdog" in resp.error
