"""Resilience subsystem: typed errors, watchdogs, fault injection.

The simulators in this repository run long event-driven loops (MT-CGRF
token flow, SGMF dataflow firing, Fermi SIMT replay); this package is
the substrate that keeps one bad workload from taking down a whole
evaluation sweep:

* :mod:`repro.resilience.errors` — the ``ReproError`` exception
  hierarchy every failure in the library descends from;
* :mod:`repro.resilience.watchdog` — the forward-progress watchdog
  hooked into all three simulator main loops, with diagnostic snapshots;
* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection used to prove the watchdog and verification actually catch
  hangs and silent corruption;
* :mod:`repro.resilience.policy` — bounded-retry policy and the
  structured failure records behind degraded suite rows.

See ``docs/resilience.md`` for the operator-facing guide.
"""

from repro.resilience.atomicio import (
    atomic_pickle,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.resilience.errors import (
    CompileError,
    FaultInjectedError,
    MappingError,
    OptionKeyError,
    ReproError,
    ResultCacheDivergenceError,
    ResultCacheError,
    SimulationError,
    SimulationHangError,
    VerificationError,
    WorkerCrashError,
)
from repro.resilience.faults import (
    DROP_STALL_CYCLES,
    FAULT_KINDS,
    FaultInjector,
    FaultLogEntry,
    FaultSpec,
)
from repro.resilience.policy import AttemptRecord, KernelFailure, RetryPolicy
from repro.resilience.watchdog import (
    DiagnosticSnapshot,
    ForwardProgressWatchdog,
    WatchdogConfig,
    snapshot_from_replicas,
    wall_clock_limit,
)

__all__ = [
    "AttemptRecord",
    "CompileError",
    "DROP_STALL_CYCLES",
    "DiagnosticSnapshot",
    "FAULT_KINDS",
    "FaultInjectedError",
    "FaultInjector",
    "FaultLogEntry",
    "FaultSpec",
    "ForwardProgressWatchdog",
    "KernelFailure",
    "MappingError",
    "OptionKeyError",
    "ReproError",
    "ResultCacheDivergenceError",
    "ResultCacheError",
    "RetryPolicy",
    "SimulationError",
    "SimulationHangError",
    "VerificationError",
    "WatchdogConfig",
    "WorkerCrashError",
    "atomic_pickle",
    "atomic_write_bytes",
    "atomic_write_text",
    "snapshot_from_replicas",
    "wall_clock_limit",
]
