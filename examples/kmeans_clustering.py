"""Full k-means clustering through the host API.

Shows the `repro.host.Device` front door on a complete application: the
assignment step runs as a kernel on the simulated VGIW core (one thread
per point, loops over centres and dimensions with a running-minimum
branch — Rodinia kmeans' structure), the update step runs on the host,
and the loop iterates to convergence.  Every iteration is checked
against a straight numpy implementation.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.host import Device
from repro.ir import DType, KernelBuilder

N_POINTS = 512
N_DIMS = 4
K = 3
ITERATIONS = 6


def assign_kernel():
    kb = KernelBuilder(
        "kmeans_assign", params=["points", "centers", "assign", "n", "k", "d"]
    )
    i = kb.tid()
    d = kb.param("d")
    with kb.if_(i < kb.param("n")):
        best = kb.var("best", 1e30)
        best_c = kb.var("best_c", 0)
        with kb.for_range(0, kb.param("k"), name="c") as c:
            dist = kb.var("dist", 0.0)
            with kb.for_range(0, d, name="j") as j:
                diff = kb.load(kb.param("points") + i * d + j) \
                    - kb.load(kb.param("centers") + c * d + j)
                kb.assign(dist, dist + diff * diff)
            with kb.if_(dist < best):
                kb.assign(best, dist)
                kb.assign(best_c, c)
        kb.store(kb.param("assign") + i, kb.i2f(best_c))
    return kb.build()


def numpy_assign(points, centers):
    d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return d2.argmin(axis=1)


def main():
    rng = np.random.default_rng(29)
    blobs = [
        rng.normal(loc=c, scale=0.4, size=(N_POINTS // K, N_DIMS))
        for c in (0.0, 3.0, -3.0)
    ]
    points = np.vstack(blobs)
    rng.shuffle(points)
    centers = points[rng.choice(len(points), K, replace=False)].copy()

    dev = Device("vgiw", memory_words=1 << 16)
    d_points = dev.array(points.ravel())
    d_centers = dev.array(centers.ravel())
    d_assign = dev.empty(len(points))
    kernel = assign_kernel()

    total = 0.0
    print(f"{'iter':>4s} {'cycles':>9s} {'moved':>6s} {'inertia':>10s}")
    prev = None
    for it in range(ITERATIONS):
        d_centers.write(centers.ravel())
        result = dev.launch(
            kernel, len(points),
            points=d_points, centers=d_centers, assign=d_assign,
            n=len(points), k=K, d=N_DIMS,
        )
        total += result.cycles
        assign = d_assign.to_numpy().astype(int)
        np.testing.assert_array_equal(assign, numpy_assign(points, centers))

        moved = int((assign != prev).sum()) if prev is not None else len(points)
        inertia = sum(
            ((points[assign == c] - centers[c]) ** 2).sum() for c in range(K)
        )
        print(f"{it:4d} {result.cycles:9.0f} {moved:6d} {inertia:10.2f}")
        prev = assign
        for c in range(K):
            members = points[assign == c]
            if len(members):
                centers[c] = members.mean(axis=0)
        if moved == 0:
            break

    print(f"\nconverged; {total:.0f} total VGIW cycles; assignments match "
          f"numpy every iteration")


if __name__ == "__main__":
    main()
