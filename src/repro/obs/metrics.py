"""Metric registry: named counters, gauges, and summary histograms.

A :class:`Metrics` registry holds flat, ``/``-namespaced instruments::

    metrics = Metrics()
    vgiw = metrics.scope("vgiw")          # per-engine namespace
    vgiw.inc("bbs.reconfigurations", 12)  # -> "vgiw/bbs.reconfigurations"
    vgiw.gauge("run.cycles", 8123.0)
    vgiw.observe("block.span", 41.0)      # summary histogram

Naming convention (see ``docs/observability.md``): the scope prefix is
the engine (``vgiw`` / ``fermi`` / ``sgmf``), the metric name is
``subsystem.quantity`` in ``snake_case``.  Every engine emits the
*shared* set :data:`SHARED_COUNTERS` / :data:`SHARED_GAUGES` with
identical names, so cross-engine comparisons (and the evalharness
metrics table) can zip the three scopes without per-engine plumbing —
the parity is enforced by ``tests/test_obs.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Metrics",
    "MetricsScope",
    "SHARED_COUNTERS",
    "SHARED_GAUGES",
    "record_shared_run_metrics",
]

#: Counter names every engine records for every run (same kernel on all
#: three machines → the same shared counter namespace).
SHARED_COUNTERS: Tuple[str, ...] = (
    "run.threads",
    "mem.l1.accesses",
    "mem.l1.misses",
    "mem.l2.accesses",
    "mem.l2.misses",
    "mem.dram.reads",
    "mem.dram.writes",
    "mem.dram.row_activations",
)

#: Gauge names every engine records for every run.
SHARED_GAUGES: Tuple[str, ...] = (
    "run.cycles",
)


class Histogram:
    """Constant-space summary histogram (count / sum / min / max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one (summary
        statistics compose exactly: counts/sums add, min/max combine)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0.0 if self.min is None else self.min,
            "max": 0.0 if self.max is None else self.max,
            "mean": self.mean,
        }


class Metrics:
    """Flat registry of counters, gauges, and summary histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into summary histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one.

        Counters and histograms compose exactly (they are additive);
        gauges take the *other* registry's value (last-writer-wins,
        matching sequential ``gauge()`` calls).  ``run_suite --jobs``
        uses this to aggregate per-worker registries in deterministic
        kernel order, so a parallel sweep's merged registry equals the
        serial one.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)

    # -- namespaces ----------------------------------------------------
    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prepends ``prefix + "/"`` to every name."""
        return MetricsScope(self, prefix)

    def names(self, prefix: Optional[str] = None) -> List[str]:
        """All instrument names, optionally filtered to one scope."""
        all_names = sorted(
            set(self.counters) | set(self.gauges) | set(self.histograms)
        )
        if prefix is None:
            return all_names
        head = prefix.rstrip("/") + "/"
        return [n for n in all_names if n.startswith(head)]

    def scope_names(self) -> List[str]:
        """The distinct scope prefixes present in the registry."""
        return sorted({n.split("/", 1)[0] for n in self.names() if "/" in n})

    def value(self, name: str, default: Optional[float] = None):
        """Counter or gauge value (histograms return their mean)."""
        if name in self.counters:
            return self.counters[name]
        if name in self.gauges:
            return self.gauges[name]
        if name in self.histograms:
            return self.histograms[name].mean
        return default

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def format(self, prefix: Optional[str] = None) -> str:
        """Plain-text ``name = value`` dump (CLI ``--metrics`` output)."""
        lines = []
        for name in self.names(prefix):
            if name in self.histograms:
                h = self.histograms[name]
                lines.append(
                    f"{name} = n={h.count} mean={h.mean:.3g} "
                    f"min={0 if h.min is None else h.min:.3g} "
                    f"max={0 if h.max is None else h.max:.3g}"
                )
            else:
                value = self.value(name)
                if isinstance(value, float) and value != int(value):
                    lines.append(f"{name} = {value:.6g}")
                else:
                    lines.append(f"{name} = {int(value)}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return (len(self.counters) + len(self.gauges)
                + len(self.histograms))

    def __repr__(self) -> str:
        return (f"Metrics({len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, "
                f"{len(self.histograms)} histograms)")


class MetricsScope:
    """A prefixing view onto a :class:`Metrics` registry."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: Metrics, prefix: str):
        self.registry = registry
        self.prefix = prefix.rstrip("/")

    def _name(self, name: str) -> str:
        return f"{self.prefix}/{name}"

    def inc(self, name: str, value: float = 1) -> None:
        self.registry.inc(self._name(name), value)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(self._name(name), value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(self._name(name), value)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, self._name(prefix))

    def names(self) -> List[str]:
        head = self.prefix + "/"
        return [n[len(head):] for n in self.registry.names(self.prefix)]

    def value(self, name: str, default: Optional[float] = None):
        return self.registry.value(self._name(name), default)

    def __repr__(self) -> str:
        return f"MetricsScope({self.prefix!r} -> {self.registry!r})"


def record_shared_run_metrics(scope: MetricsScope, *, cycles: float,
                              n_threads: int, l1, l2, dram) -> None:
    """Record the cross-engine shared namespace for one run.

    ``l1``/``l2`` are :class:`~repro.memory.cache.CacheStats`, ``dram``
    a :class:`~repro.memory.dram.DRAMStats`.  Called by every engine at
    the end of ``run`` so the same kernel produces the same counter
    names on all three machines (:data:`SHARED_COUNTERS`).
    """
    scope.gauge("run.cycles", cycles)
    scope.inc("run.threads", n_threads)
    scope.inc("mem.l1.accesses", l1.accesses)
    scope.inc("mem.l1.misses", l1.misses)
    scope.inc("mem.l2.accesses", l2.accesses)
    scope.inc("mem.l2.misses", l2.misses)
    scope.inc("mem.dram.reads", dram.reads)
    scope.inc("mem.dram.writes", dram.writes)
    scope.inc("mem.dram.row_activations", dram.row_misses)
