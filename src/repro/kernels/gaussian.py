"""GE — Gaussian elimination ``Fan1``/``Fan2`` (Rodinia), paper Table 2:
2 and 5 basic blocks.

One elimination step ``t``: ``Fan1`` computes the multiplier column
``m[:, t]``; ``Fan2`` applies it to the trailing submatrix and, on the
first column, to the right-hand side.  Both kernels are race-free within
one launch (each thread owns its output cells; the pivot row/column read
by every thread is not written during the step).
"""

from __future__ import annotations

import numpy as np

from repro.ir import Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def fan1_kernel() -> Kernel:
    kb = KernelBuilder("Fan1", params=["a", "m", "size", "t"])
    i = kb.tid()
    size = kb.param("size")
    t = kb.param("t")
    with kb.if_(i < size - 1 - t):
        idx = size * (t + 1 + i) + t
        pivot = kb.load(kb.param("a") + size * t + t)
        kb.store(kb.param("m") + idx, kb.load(kb.param("a") + idx) / pivot)
    return kb.build()


def fan2_kernel() -> Kernel:
    kb = KernelBuilder("Fan2", params=["a", "b", "m", "size", "t"])
    i = kb.tid()
    size = kb.param("size")
    t = kb.param("t")
    width = size - t
    with kb.if_(i < (size - 1 - t) * width):
        row = i // width
        col = i % width
        xidx = row + 1 + t
        yidx = col + t
        mult = kb.load(kb.param("m") + size * xidx + t)
        aval = kb.load(kb.param("a") + size * xidx + yidx)
        pivot = kb.load(kb.param("a") + size * t + yidx)
        kb.store(kb.param("a") + size * xidx + yidx, aval - mult * pivot)
        with kb.if_(yidx == t):
            bval = kb.load(kb.param("b") + xidx)
            bt = kb.load(kb.param("b") + t)
            kb.store(kb.param("b") + xidx, bval - mult * bt)
    return kb.build()


def _setup(scale: str, seed: int):
    size = pick(scale, 16, 64, 128)
    rng = np.random.default_rng(seed)
    a = rng.uniform(1.0, 2.0, (size, size)) + np.eye(size) * size
    b = rng.uniform(0.0, 1.0, size)
    t = 1  # one mid-stream elimination step
    return size, a, b, t


def make_fan1_workload(scale: str = "small", seed: int = 41) -> Workload:
    size, a, b, t = _setup(scale, seed)
    m = np.zeros((size, size))
    mem = MemoryImage(2 * size * size + size + 64)
    b_a = mem.alloc_array("a", a.ravel())
    b_m = mem.alloc_array("m", m.ravel())

    e_m = m.copy()
    e_m[t + 1:, t] = a[t + 1:, t] / a[t, t]

    return Workload(
        name="gaussian/Fan1",
        app="GE",
        kernel=fan1_kernel(),
        memory=mem,
        params={"a": b_a, "m": b_m, "size": size, "t": t},
        n_threads=size - 1 - t,
        expected={"m": e_m.ravel()},
        paper_blocks=2,
    )


def make_fan2_workload(scale: str = "small", seed: int = 42) -> Workload:
    size, a, b, t = _setup(scale, seed)
    m = np.zeros((size, size))
    m[t + 1:, t] = a[t + 1:, t] / a[t, t]

    mem = MemoryImage(2 * size * size + 2 * size + 64)
    b_a = mem.alloc_array("a", a.ravel())
    b_b = mem.alloc_array("b", b)
    b_m = mem.alloc_array("m", m.ravel())

    e_a = a.copy()
    e_b = b.copy()
    e_a[t + 1:, t:] -= np.outer(m[t + 1:, t], a[t, t:])
    e_b[t + 1:] -= m[t + 1:, t] * b[t]

    n_threads = (size - 1 - t) * (size - t)
    return Workload(
        name="gaussian/Fan2",
        app="GE",
        kernel=fan2_kernel(),
        memory=mem,
        params={"a": b_a, "b": b_b, "m": b_m, "size": size, "t": t},
        n_threads=n_threads,
        expected={"a": e_a.ravel(), "b": e_b},
        paper_blocks=5,
    )
