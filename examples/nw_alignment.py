"""Full Needleman-Wunsch alignment on the VGIW core.

Runs the two NW kernels over every anti-diagonal of the score matrix —
the upper-left triangle with ``needle_cuda_shared_1`` and the lower-right
with ``needle_cuda_shared_2`` — exactly like the Rodinia host loop, and
checks the filled matrix against the dynamic-programming reference.

The wavefront pattern is the worst case for a machine that pays a fixed
cost per scheduled block: early/late diagonals have very few threads, so
this example also prints how the per-launch cycle cost tracks the
diagonal length (the amortisation argument of DESIGN.md section 5).

Run:  python examples/nw_alignment.py
"""

import numpy as np

from repro.kernels.nw import (
    PENALTY,
    needle1_kernel,
    needle2_kernel,
    nw_reference_full,
)
from repro.memory import MemoryImage
from repro.vgiw import VGIWCore


def main():
    size = 48  # playable square; cols = size + 1 with the boundary
    cols = size + 1
    rng = np.random.default_rng(9)
    ref = rng.integers(-10, 11, (cols, cols)).astype(float)
    score = np.zeros((cols, cols))
    score[0, :] = -PENALTY * np.arange(cols)
    score[:, 0] = -PENALTY * np.arange(cols)

    mem = MemoryImage(2 * cols * cols + 64)
    b_score = mem.alloc_array("score", score.ravel())
    b_ref = mem.alloc_array("ref", ref.ravel())

    core = VGIWCore()
    k1, k2 = needle1_kernel(), needle2_kernel()
    total = 0.0
    lengths, costs = [], []

    # Upper-left triangle: diagonals 0 .. cols-2.
    for d in range(cols - 1):
        length = min(d + 1, cols - 1)
        params = {"score": b_score, "ref": b_ref, "cols": cols, "d": d,
                  "len": length}
        r = core.run(k1, mem, params, length)
        total += r.cycles
        lengths.append(length)
        costs.append(r.cycles)

    # Lower-right triangle: diagonals 1 .. cols-2.
    for d in range(1, cols - 1):
        length = cols - 1 - d
        params = {"score": b_score, "ref": b_ref, "cols": cols, "d": d,
                  "len": length}
        r = core.run(k2, mem, params, length)
        total += r.cycles

    got = mem.read_region("score").reshape(cols, cols)
    want = nw_reference_full(ref, PENALTY)
    np.testing.assert_array_equal(got, want)
    print(f"aligned a {size}x{size} matrix in {total:.0f} VGIW cycles "
          f"({2 * (cols - 1) - 1} kernel launches)")
    print("score matrix matches the DP reference exactly\n")

    print("amortisation of the per-launch cost (upper triangle):")
    print(f"{'diag len':>9s} {'cycles':>8s} {'cycles/cell':>12s}")
    for length, cost in zip(lengths[::8], costs[::8]):
        print(f"{length:9d} {cost:8.0f} {cost / length:12.1f}")
    print("\nshort diagonals pay the fixed reconfiguration + drain cost; "
          "long ones amortise it —\nthe same scaling argument the paper "
          "makes for thread tiles (section 3.2).")


if __name__ == "__main__":
    main()
