"""Tests for the reference interpreter against numpy golden models."""

import numpy as np
import pytest

from repro.interp import Interpreter, InterpreterError, interpret
from repro.ir import DType, KernelBuilder
from repro.kernels import (
    fig1_kernel,
    fig1_reference,
    loop_sum_kernel,
    loop_sum_reference,
    make_fig1_workload,
    memcopy_kernel,
    saxpy_kernel,
)
from repro.memory import MemoryImage


def test_saxpy_matches_numpy():
    n = 32
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)
    mem = MemoryImage(256)
    bx = mem.alloc_array("x", x)
    by = mem.alloc_array("y", y)
    bo = mem.alloc("out", n)
    interpret(saxpy_kernel(), mem, {"a": 3.0, "x": bx, "y": by, "out": bo, "n": n}, n)
    np.testing.assert_allclose(mem.read_region("out"), 3.0 * x + y)


def test_saxpy_guard_masks_extra_threads():
    n = 8
    mem = MemoryImage(128)
    bx = mem.alloc_array("x", np.ones(n))
    by = mem.alloc_array("y", np.zeros(n))
    bo = mem.alloc("out", 16)
    # Launch 16 threads over 8 elements; the guard must keep 8..15 idle.
    interpret(saxpy_kernel(), mem, {"a": 1.0, "x": bx, "y": by, "out": bo, "n": n}, 16)
    out = mem.read_region("out")
    assert list(out[:8]) == [1.0] * 8
    assert list(out[8:]) == [0.0] * 8


def test_fig1_matches_golden_and_diverges():
    kernel, mem, params = make_fig1_workload(n_threads=64)
    data = mem.read_region("data")
    result = interpret(kernel, mem, params, 64)
    np.testing.assert_allclose(
        mem.read_region("out"), fig1_reference(data, params["a"], params["b"])
    )
    # The workload must actually diverge: all three arms taken.
    visited = set()
    for t in result.traces:
        visited.add(tuple(t.blocks))
    assert len(visited) == 3


def test_loop_sum_with_divergent_trip_counts():
    stride = 8
    n_threads = 16
    rng = np.random.default_rng(1)
    data = rng.normal(size=stride * n_threads)
    count = rng.integers(0, stride + 1, size=n_threads)
    mem = MemoryImage(4096)
    bd = mem.alloc_array("data", data)
    bc = mem.alloc_array("count", count)
    bo = mem.alloc("out", n_threads)
    result = interpret(
        loop_sum_kernel(),
        mem,
        {"data": bd, "count": bc, "out": bo, "stride": stride},
        n_threads,
    )
    np.testing.assert_allclose(
        mem.read_region("out"), loop_sum_reference(data, count, stride)
    )
    # Trace lengths must differ across threads (divergent trip counts).
    lengths = {len(t.blocks) for t in result.traces}
    assert len(lengths) > 1


def test_memcopy():
    n = 16
    mem = MemoryImage(256)
    src = mem.alloc_array("src", np.arange(float(n)))
    dst = mem.alloc("dst", n)
    interpret(memcopy_kernel(), mem, {"src": src, "dst": dst, "n": n}, n)
    np.testing.assert_array_equal(mem.read_region("dst"), np.arange(float(n)))


def test_missing_param_raises():
    mem = MemoryImage(64)
    with pytest.raises(InterpreterError, match="missing parameter"):
        Interpreter(saxpy_kernel(), mem, {"a": 1.0}, 8)


def test_runaway_loop_guard():
    kb = KernelBuilder("spin", params=["out"])
    i = kb.var("i", 0)
    with kb.loop() as lp:
        lp.break_unless(i >= 0)  # never false
        kb.assign(i, i + 1)
    kb.store(kb.param("out"), i)
    k = kb.build()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    with pytest.raises(InterpreterError, match="block visits"):
        interpret(k, mem, {"out": out}, 1, max_block_visits=100)


def test_param_dtype_coercion():
    # A param read via fparam must arrive as float even if passed as int.
    kb = KernelBuilder("k", params=["a", "out"])
    kb.store(kb.param("out"), kb.fparam("a") * 2.0)
    k = kb.build()
    mem = MemoryImage(8)
    out = mem.alloc("out", 1)
    interpret(k, mem, {"a": 3, "out": out}, 1)
    assert mem.read(out) == 6.0


def test_int_load_truncates_dtype():
    kb = KernelBuilder("k", params=["src", "out"])
    v = kb.load(kb.param("src"), DType.INT)
    kb.store(kb.param("out"), v * 2)
    k = kb.build()
    mem = MemoryImage(8)
    src = mem.alloc("src", 1)
    out = mem.alloc("out", 1)
    mem.write(src, 5.0)
    interpret(k, mem, {"src": src, "out": out}, 1)
    assert mem.read(out) == 10.0


def test_trace_block_visit_counts():
    kernel, mem, params = make_fig1_workload(n_threads=16)
    result = interpret(kernel, mem, params, 16)
    # Every thread visits entry and the final merge block exactly once.
    assert result.block_visits["entry"] == 16
    merge = kernel.exit_blocks()[0]
    assert result.block_visits[merge] == 16
    assert result.total_instructions == sum(t.instructions for t in result.traces)
