"""Oversized-basic-block splitting.

Unlike SGMF, which simply cannot run kernels whose CDFG exceeds the
fabric, VGIW executes blocks one at a time — but a *single basic block*
whose dataflow graph needs more units of some kind than the fabric has
still cannot be configured.  The compiler handles this by splitting such
a block into a chain of sequential sub-blocks connected by unconditional
jumps; the values crossing the split automatically become live values on
the next liveness pass.  This is what lets VGIW "execute kernels of any
size" (paper §5).

The split point is chosen by instruction count (halving), and the
driver in :mod:`repro.compiler.pipeline` re-checks capacity after each
round, so pathological blocks converge in ``O(log n)`` rounds.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.block import BasicBlock
from repro.ir.instr import Terminator
from repro.ir.kernel import Kernel
from repro.resilience.errors import CompileError


class PartitionError(CompileError):
    """A block cannot be split any further yet still exceeds capacity."""


def split_block(kernel: Kernel, name: str) -> Kernel:
    """Split block ``name`` into two sequential halves.

    Returns a new kernel; the original is left untouched.  The first
    half keeps the block's name (so CFG edges into it stay valid) and
    jumps to the second half, which inherits the original terminator.
    """
    block = kernel.blocks[name]
    if len(block.instrs) < 2:
        raise PartitionError(
            f"block {name!r} has {len(block.instrs)} instruction(s) and "
            "cannot be split further, but its dataflow graph exceeds the "
            "fabric capacity"
        )
    cut = len(block.instrs) // 2
    tail_name = _fresh_name(kernel, name)
    head = BasicBlock(name, block.instrs[:cut], Terminator.jmp(tail_name))
    tail = BasicBlock(tail_name, block.instrs[cut:], block.terminator)

    blocks: Dict[str, BasicBlock] = {}
    for bname, b in kernel.blocks.items():
        if bname == name:
            blocks[name] = head
            blocks[tail_name] = tail
        else:
            blocks[bname] = b
    return Kernel(
        name=kernel.name,
        params=list(kernel.params),
        blocks=blocks,
        entry=kernel.entry,
        param_dtypes=dict(kernel.param_dtypes),
    )


def _fresh_name(kernel: Kernel, base: str) -> str:
    i = 1
    while f"{base}.split{i}" in kernel.blocks:
        i += 1
    return f"{base}.split{i}"
