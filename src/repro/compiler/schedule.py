"""Static basic-block scheduling: block-ID assignment.

The compiler determines the scheduling of basic blocks and assigns each
a unique block ID in schedule order (paper §3.1).  The runtime BBS then
simply selects the smallest block ID whose thread vector is non-empty.
The entry block gets the reserved ID 0, and loops manifest as branches
to *smaller* IDs (back edges), which is exactly what a reverse
post-order numbering of a reducible CFG produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.compiler.cfganalysis import reverse_post_order
from repro.ir.kernel import Kernel
from repro.resilience.errors import CompileError


@dataclass(frozen=True)
class BlockSchedule:
    """Bidirectional block-name/block-ID mapping in schedule order."""

    order: List[str]          # index = block ID
    ids: Dict[str, int]       # block name -> ID

    def id_of(self, name: str) -> int:
        return self.ids[name]

    def name_of(self, block_id: int) -> str:
        return self.order[block_id]

    @property
    def n_blocks(self) -> int:
        return len(self.order)


def schedule_blocks(kernel: Kernel) -> BlockSchedule:
    """Assign block IDs by reverse post-order; entry gets ID 0."""
    order = reverse_post_order(kernel)
    if order[0] != kernel.entry:
        raise CompileError(
            "entry block must schedule first",
            kernel=kernel.name, first=order[0], entry=kernel.entry,
        )
    return BlockSchedule(order=order, ids={n: i for i, n in enumerate(order)})
