"""``python -m repro.fuzz`` — run a differential fuzz campaign.

Examples::

    # CI smoke: 25 cases, hard two-minute ceiling, fail on divergence
    python -m repro.fuzz --seed 0 --count 25 --time-budget 120

    # Overnight: four workers, reproducers land in tests/corpus/
    python -m repro.fuzz --seed 1 --count 5000 --jobs 4 \
        --corpus-dir tests/corpus --out campaign.json

Exit status: 0 when every case is clean (or benignly unmappable on
SGMF), 1 when any divergence was found.  The summary JSON is
deterministic for a given ``--seed``/``--count`` — byte-identical
across ``--jobs`` settings — so it can be diffed across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.generate import GenConfig
from repro.fuzz.oracle import DEFAULT_ENGINES
from repro.obs import Metrics


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential kernel fuzzing across the four "
                    "execution substrates.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master campaign seed (default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="number of cases to run (default 100)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock ceiling; remaining cases are "
                             "skipped (default unbounded)")
    parser.add_argument("--engines", nargs="+", default=list(DEFAULT_ENGINES),
                        metavar="ENGINE",
                        help=f"engines to exercise "
                             f"(default {' '.join(DEFAULT_ENGINES)})")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the summary JSON here")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write reduced reproducers (.kir) here")
    parser.add_argument("--no-reduce", action="store_true",
                        help="skip delta-debugging reduction")
    parser.add_argument("--max-threads", type=int, default=None,
                        help="generator: cap launch widths")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="generator: cap control-flow nesting")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-case progress lines")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    gen_kwargs = {}
    if args.max_threads is not None:
        gen_kwargs["max_threads"] = args.max_threads
    if args.max_depth is not None:
        gen_kwargs["max_depth"] = args.max_depth
    config = CampaignConfig(
        seed=args.seed,
        count=args.count,
        jobs=args.jobs,
        time_budget=args.time_budget,
        engines=tuple(args.engines),
        gen=GenConfig(**gen_kwargs),
        reduce=not args.no_reduce,
        corpus_dir=args.corpus_dir,
    )

    def progress(index, report):
        if args.quiet:
            return
        verdict = ("DIVERGENT " + ",".join(report.divergent_engines)
                   if report.divergent else "ok")
        print(f"[{index + 1:>4}/{config.count}] seed={report.seed:012x} "
              f"blocks={report.n_blocks:<3} instrs={report.n_instrs:<4} "
              f"{verdict}")

    metrics = Metrics()
    result = run_campaign(config, metrics=metrics, progress=progress)
    summary = result.summary()

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.out}")

    print(f"processed {summary['processed']}/{config.count} cases "
          f"({summary['skipped']} skipped by budget)")
    print(f"outcomes: {summary['status_counts']}")
    if result.reproducers:
        for name, path in result.reproducers.items():
            print(f"reproducer: {path}")
    if summary["divergent_count"]:
        print(f"FAIL: {summary['divergent_count']} divergent case(s)",
              file=sys.stderr)
        return 1
    print("OK: no divergences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
