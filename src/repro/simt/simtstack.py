"""SIMT reconvergence stack (immediate post-dominator scheme).

This is the standard Fermi-class divergence mechanism the paper's
baseline uses ("the GPGPU applies an execution mask to disable lanes",
§2): when a warp's lanes branch different ways, the warp serialises the
two paths and reconverges at the branch's immediate post-dominator.

The implementation follows the GPGPU-Sim formulation: a stack of
⟨reconvergence block, next block, active mask⟩ entries; the top entry is
what the warp executes next.  A uniform branch updates the top entry; a
divergent branch replaces it with a reconvergence continuation plus one
entry per distinct target; reaching the top entry's reconvergence block
pops it.  Kernel exit is represented by the sentinel :data:`EXIT`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.resilience.errors import SimulationError

#: Sentinel "block" meaning the lanes have left the kernel.
EXIT = "<exit>"


class SIMTStackError(SimulationError):
    """Stack protocol violation (indicates a simulator bug)."""


@dataclass
class StackEntry:
    reconv: str          # block at which this entry's lanes reconverge
    next_block: str      # block to execute next (or EXIT)
    mask: int            # active lanes


class SIMTStack:
    """Per-warp reconvergence stack."""

    def __init__(self, entry_block: str, full_mask: int,
                 ipdom: Dict[str, Optional[str]]):
        self._ipdom = {k: (v if v is not None else EXIT) for k, v in ipdom.items()}
        self.stack: List[StackEntry] = [
            StackEntry(reconv=EXIT, next_block=entry_block, mask=full_mask)
        ]
        self.divergences = 0
        self.max_depth = 1

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every entry has retired — the warp has exited."""
        return not self.stack

    def _transparent(self, entry: StackEntry) -> bool:
        """Entries that must pop without executing: lanes that left the
        kernel, and continuations already sitting at their own
        reconvergence point (an inner divergence that reconverges at the
        parent's reconvergence point — the ancestor continuation below
        carries these lanes, so executing here would duplicate work)."""
        return entry.next_block == EXIT or entry.next_block == entry.reconv

    def current(self) -> StackEntry:
        """The active (top-of-stack) entry, skipping transparent ones."""
        if not self.stack:
            raise SIMTStackError("warp already finished")
        top = self.stack[-1]
        while self._transparent(top):
            self.stack.pop()
            if not self.stack:
                raise SIMTStackError("warp already finished")
            top = self.stack[-1]
        return top

    def peek_block(self) -> Optional[str]:
        """Block the warp will execute next, or None when finished."""
        while self.stack and self._transparent(self.stack[-1]):
            self.stack.pop()
        return self.stack[-1].next_block if self.stack else None

    # ------------------------------------------------------------------
    def advance(self, executed_block: str, targets: Dict[str, int]) -> None:
        """Commit the branch outcome of ``executed_block``.

        ``targets`` maps successor block (or :data:`EXIT`) to the lane
        mask taking it; the masks must partition the top entry's mask.
        """
        top = self.current()
        if executed_block != top.next_block:
            raise SIMTStackError(
                f"executed {executed_block!r} but top of stack expected "
                f"{top.next_block!r}"
            )
        union = 0
        for mask in targets.values():
            if union & mask:
                raise SIMTStackError("lane assigned to two branch targets")
            union |= mask
        if union != top.mask:
            raise SIMTStackError("branch outcome does not cover the warp mask")

        live = {t: m for t, m in targets.items() if m}
        if len(live) == 1:
            (target,) = live
            if target == top.reconv:
                self.stack.pop()  # reconverged: resume the entry below
            else:
                top.next_block = target
            return

        # Divergence: serialise the paths, reconverging at the ipdom.
        self.divergences += 1
        reconv = self._ipdom.get(executed_block, EXIT)
        self.stack.pop()
        self.stack.append(
            StackEntry(reconv=top.reconv, next_block=reconv, mask=top.mask)
        )
        # Deterministic order: EXIT last so real work runs first.
        for target in sorted(live, key=lambda t: (t == EXIT, t), reverse=True):
            if target == reconv:
                # Lanes that jump straight to the reconvergence point just
                # wait there; they are covered by the continuation entry.
                continue
            self.stack.append(
                StackEntry(reconv=reconv, next_block=target, mask=live[target])
            )
        self.max_depth = max(self.max_depth, len(self.stack))
