"""Compile-cache correctness: content keys, disk tier, fall-backs.

The cache's contract (``repro/compiler/cache.py``, ``docs/performance.md``):
keys are content hashes over (IR text, config repr, options, version),
so any change to the kernel or the architecture invalidates; the disk
tier can only ever cost a recompile, never correctness.
"""

import os
import pickle

import pytest

from repro.arch import FabricSpec, UnitKind
from repro.compiler import (
    CompileCache,
    cached_compile_kernel,
    cached_map_kernel,
    cached_optimize_kernel,
    kernel_fingerprint,
)
from repro.ir import KernelBuilder
from repro.obs import Metrics
from repro.sgmf.mapping import SGMFUnmappableError


def make_kernel(scale_by=2.0, name="cachetest"):
    kb = KernelBuilder(name, params=["x", "out", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        kb.store(kb.param("out") + i, kb.load(kb.param("x") + i) * scale_by)
    return kb.build()


def small_spec():
    return FabricSpec(width=9, height=6, counts={
        UnitKind.COMPUTE: 16, UnitKind.SPECIAL: 6, UnitKind.LDST: 8,
        UnitKind.LVU: 8, UnitKind.SJU: 8, UnitKind.CVU: 8,
    })


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------
def test_fingerprint_tracks_ir_content():
    assert kernel_fingerprint(make_kernel()) == kernel_fingerprint(make_kernel())
    assert (kernel_fingerprint(make_kernel(scale_by=2.0))
            != kernel_fingerprint(make_kernel(scale_by=3.0)))


def test_compile_hits_on_identical_kernel_and_spec():
    cache = CompileCache()
    k = make_kernel()
    first = cached_compile_kernel(k, cache=cache)
    again = cached_compile_kernel(make_kernel(), cache=cache)
    assert again is first  # same IR content -> same entry
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_ir_change_invalidates():
    cache = CompileCache()
    cached_compile_kernel(make_kernel(scale_by=2.0), cache=cache)
    cached_compile_kernel(make_kernel(scale_by=3.0), cache=cache)
    assert cache.misses == 2 and cache.hits == 0


def test_arch_config_change_invalidates():
    cache = CompileCache()
    k = make_kernel()
    default = cached_compile_kernel(k, cache=cache)
    other = cached_compile_kernel(k, small_spec(), cache=cache)
    assert cache.misses == 2 and cache.hits == 0
    assert other is not default


def test_compile_options_participate_in_key():
    cache = CompileCache()
    k = make_kernel()
    cached_compile_kernel(k, cache=cache, replicate=True)
    cached_compile_kernel(k, cache=cache, replicate=False)
    assert cache.misses == 2


def test_optimize_params_participate_in_key():
    cache = CompileCache()
    k = make_kernel()
    a = cached_optimize_kernel(k, params={"n": 64}, cache=cache)
    b = cached_optimize_kernel(k, params={"n": 128}, cache=cache)
    assert cache.misses == 2
    c = cached_optimize_kernel(k, params={"n": 64}, cache=cache)
    assert c is a and cache.hits == 1
    assert b is not a


def test_cache_none_is_passthrough():
    k = make_kernel()
    compiled = cached_compile_kernel(k, cache=None)
    assert compiled.kernel.name == k.name


def test_unmappable_result_is_cached():
    # A kernel too big for a tiny fabric: the capacity proof is cached
    # as a sentinel and re-raised, not re-derived.
    spec = FabricSpec(width=3, height=3, counts={
        UnitKind.COMPUTE: 3, UnitKind.SPECIAL: 1, UnitKind.LDST: 2,
        UnitKind.LVU: 1, UnitKind.SJU: 1, UnitKind.CVU: 1,
    })
    cache = CompileCache()
    k = make_kernel()
    with pytest.raises(SGMFUnmappableError):
        cached_map_kernel(k, spec, cache=cache)
    with pytest.raises(SGMFUnmappableError):
        cached_map_kernel(k, spec, cache=cache)
    assert cache.misses == 1 and cache.hits == 1


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------
def test_disk_tier_round_trip(tmp_path):
    k = make_kernel()
    first = CompileCache(str(tmp_path))
    compiled = cached_compile_kernel(k, cache=first)
    assert first.disk_writes >= 1

    fresh = CompileCache(str(tmp_path))  # new process, same directory
    again = cached_compile_kernel(make_kernel(), cache=fresh)
    assert fresh.disk_hits == 1 and fresh.misses == 0
    assert again.kernel.name == compiled.kernel.name
    assert sorted(again.blocks) == sorted(compiled.blocks)
    assert again.n_blocks == compiled.n_blocks


def test_corrupt_disk_entry_falls_back_to_recompile(tmp_path):
    k = make_kernel()
    cached_compile_kernel(k, cache=CompileCache(str(tmp_path)))
    entries = [p for p in os.listdir(tmp_path) if p.endswith(".pkl")]
    assert entries
    for entry in entries:  # truncate/garble every pickle
        with open(os.path.join(tmp_path, entry), "wb") as fh:
            fh.write(b"\x80corrupt")

    fresh = CompileCache(str(tmp_path))
    compiled = cached_compile_kernel(make_kernel(), cache=fresh)
    assert compiled.kernel.name == k.name       # correct result anyway
    assert fresh.disk_errors >= 1               # corruption was counted
    assert fresh.misses == 1 and fresh.disk_hits == 0


def test_stale_schema_version_misses(tmp_path, monkeypatch):
    import repro.compiler.cache as cache_mod

    k = make_kernel()
    cached_compile_kernel(k, cache=CompileCache(str(tmp_path)))
    monkeypatch.setattr(cache_mod, "CACHE_VERSION", cache_mod.CACHE_VERSION + 1)
    fresh = cache_mod.CompileCache(str(tmp_path))
    cache_mod.cached_compile_kernel(make_kernel(), cache=fresh)
    # The version participates in the key, so the old entry is unseen.
    assert fresh.misses == 1 and fresh.disk_hits == 0


def test_unpicklable_payload_degrades_to_memory(tmp_path):
    cache = CompileCache(str(tmp_path))
    value = cache.get_or_build("adhoc", cache.make_key("adhoc", "k"),
                               lambda: lambda: 1)  # lambdas don't pickle
    assert callable(value)
    assert cache.disk_errors == 1
    # ...but the in-memory tier still serves it.
    again = cache.get_or_build("adhoc", cache.make_key("adhoc", "k"),
                               lambda: None)
    assert again is value


# ----------------------------------------------------------------------
# Introspection / merging
# ----------------------------------------------------------------------
def test_record_metrics_publishes_compile_scope():
    cache = CompileCache()
    cached_compile_kernel(make_kernel(), cache=cache)
    cached_compile_kernel(make_kernel(), cache=cache)
    metrics = Metrics()
    cache.record_metrics(metrics)
    assert metrics.value("compile/cache.hits") == 1
    assert metrics.value("compile/cache.misses") == 1
    assert metrics.value("compile/cache.entries") == 1


def test_merge_stats_folds_worker_counters():
    parent, worker = CompileCache(), CompileCache()
    cached_compile_kernel(make_kernel(), cache=worker)
    cached_compile_kernel(make_kernel(), cache=worker)
    parent.merge_stats(worker.stats())
    assert parent.hits == 1 and parent.misses == 1
