"""Assembled memory hierarchies for the three modelled cores.

``MemorySystem`` wires a banked L1 in front of a banked L2 in front of
GDDR5 DRAM (paper §3.6 / Table 1).  The VGIW core additionally owns a
``LiveValueCache`` instance backed by the same L2 (paper §3.4).

Word-granularity entry points convert word addresses to line addresses;
the Fermi path instead uses :mod:`repro.memory.coalescer` and calls
``access_line`` once per coalesced segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MemoryConfig
from repro.memory.cache import Cache, CacheStats
from repro.memory.coalescer import line_address_of_word
from repro.memory.dram import DRAM
from repro.memory.image import WORD_BYTES


class MemorySystem:
    """L1 + L2 + DRAM with configurable L1 write policy.

    ``faults`` (a :class:`repro.resilience.faults.FaultInjector`) hooks
    the scalar and coalesced access paths: a ``mem_drop`` fault makes a
    response complete ``drop_stall_cycles`` in the future — the timing
    shape of a response that never returns, which the forward-progress
    watchdog then catches as a hang.
    """

    def __init__(self, config: MemoryConfig, l1_write_back: bool,
                 faults=None, tracer=None):
        self.config = config
        self.faults = faults
        # ``tracer`` (a :class:`repro.obs.Tracer`) threads cycle-level
        # observability through every level: L1/L2 misses and DRAM row
        # activations become timeline events.
        self.dram = DRAM(config, tracer=tracer)
        self.l2 = Cache(
            "L2",
            size_bytes=config.l2_size_bytes,
            line_bytes=config.l2_line_bytes,
            ways=config.l2_ways,
            banks=config.l2_banks,
            hit_latency=config.l2_hit_latency,
            next_level=self.dram,
            write_back=True,
            # Every L2 write in this model is a full-line writeback from
            # the L1 or the LVC, so allocating without fetching is exact.
            write_validate=True,
            tracer=tracer,
        )
        self.l1 = Cache(
            "L1",
            size_bytes=config.l1_size_bytes,
            line_bytes=config.l1_line_bytes,
            ways=config.l1_ways,
            banks=config.l1_banks,
            hit_latency=config.l1_hit_latency,
            next_level=self.l2,
            write_back=l1_write_back,
            # Write-back/write-allocate (VGIW, SGMF) allocates store-miss
            # lines without fetching: data-parallel thread vectors fully
            # overwrite output lines, so fetch-on-store would stream
            # garbage (a standard write-validate optimisation).  The
            # Fermi configuration is write-through/no-allocate and never
            # consults this flag on its write path.
            write_validate=l1_write_back,
            tracer=tracer,
        )
        self._l1_line_words = config.l1_line_bytes // WORD_BYTES

    # -- scalar (VGIW/SGMF LDST units) ---------------------------------
    def access_word(self, time: float, word_addr: int, is_write: bool) -> float:
        """One scalar word access through the L1.

        Banks are word-interleaved for scalar clients so that the 32
        banks serve 32 consecutive words of a line concurrently.
        """
        # line_address_of_word, with the per-line word count hoisted —
        # this is the hottest entry point of both dataflow simulators.
        word_addr = int(word_addr)
        line = word_addr // self._l1_line_words
        bank = word_addr % self.config.l1_banks
        done = self.l1.access(time, line, is_write, bank=bank)
        if self.faults is not None and self.faults.drop_response(
            "l1-word", word_addr, time
        ):
            return done + self.faults.drop_stall_cycles
        return done

    # -- coalesced (Fermi LDST pipeline) --------------------------------
    def access_line(self, time: float, line_addr: int, is_write: bool) -> float:
        """One 128-byte transaction (a coalesced warp segment)."""
        done = self.l1.access(time, line_addr, is_write)
        if self.faults is not None and self.faults.drop_response(
            "l1-line", line_addr, time
        ):
            return done + self.faults.drop_stall_cycles
        return done

    @property
    def l1_stats(self) -> CacheStats:
        return self.l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        return self.l2.stats


class LiveValueCache:
    """The VGIW live value cache (paper §3.4).

    Caches the memory-resident live-value matrix, which is indexed by
    ⟨live value ID, thread ID⟩.  Rows are laid out thread-major so that
    consecutive threads' instances of one live value share lines; the
    matrix lives in its own address space (modelled as a distinct line
    namespace on the shared L2, offset far beyond kernel data).

    Each LVU streams the thread vector in ascending-ID order, so it
    holds the line it is working through in a single-entry line buffer
    and only touches an LVC bank when it crosses a line boundary.  This
    is what keeps the *bank-level* LVC access count an order of
    magnitude below a register file's (paper Figure 3); per-word
    requests are still tracked separately for the energy model.
    """

    #: line-address offset separating the live-value matrix from kernel
    #: data in the shared L2 namespace.
    ADDRESS_SPACE_BASE = 1 << 40

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        banks: int,
        hit_latency: int,
        l2: Cache,
        max_threads: int = 1 << 16,
        tracer=None,
    ):
        self.cache = Cache(
            "LVC",
            size_bytes=size_bytes,
            line_bytes=line_bytes,
            ways=ways,
            banks=banks,
            hit_latency=hit_latency,
            next_level=l2,
            write_back=True,
            write_validate=True,
            tracer=tracer,
        )
        self.line_bytes = line_bytes
        self.max_threads = max_threads
        #: word-granularity requests from the LVUs
        self.reads = 0
        self.writes = 0
        #: requests served out of an LVU's line buffer (no bank access)
        self.buffered = 0
        #: LVU port -> [current line, line ready time, dirty]
        self._ports: dict = {}

    def _line_addr(self, lv_id: int, tid: int) -> int:
        word = lv_id * self.max_threads + tid
        return self.ADDRESS_SPACE_BASE + word * WORD_BYTES // self.line_bytes

    def access(self, time: float, lv_id: int, tid: int, is_write: bool,
               port=None) -> float:
        """One live-value request by ⟨live value ID, thread ID⟩.

        ``port`` identifies the requesting LVU instance; requests that
        fall in the port's current line are served from its line buffer
        in one cycle.  Crossing a line boundary costs a banked LVC
        access (word-interleaved banks — the LVC is accessed at word
        granularity, paper §3.4).
        """
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        line = self._line_addr(lv_id, tid)
        if port is not None:
            cur = self._ports.get(port)
            if cur is not None and cur[0] == line:
                self.buffered += 1
                if is_write:
                    cur[2] = True
                return max(time, cur[1]) + 1.0
        word = lv_id * self.max_threads + tid
        bank = word % self.cache.banks
        done = self.cache.access(time, line, is_write, bank=bank)
        if port is not None:
            cur = self._ports.get(port)
            if cur is not None and cur[2] and cur[0] != line:
                # Flush the previous dirty line buffer to its bank.
                self.cache.access(time, cur[0], True,
                                  bank=cur[0] % self.cache.banks)
            self._ports[port] = [line, done, is_write]
        return done

    @property
    def accesses(self) -> int:
        """Word-granularity requests (line-buffer hits included)."""
        return self.reads + self.writes

    @property
    def bank_accesses(self) -> int:
        """Actual banked LVC accesses (the paper Figure 3 count)."""
        return self.cache.stats.accesses

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats
