"""Flat, word-addressed memory image shared by all execution models.

The image stores one numeric value per word.  For cache-geometry purposes
(line splitting, bank interleaving) a word occupies
:data:`WORD_BYTES` bytes, matching the 32-bit words of the modelled
hardware; values themselves are kept as Python/numpy doubles so that
integer indices up to 2**53 and 32-bit float data round-trip exactly and
golden comparisons are bit-simple.

The image also provides a tiny region allocator so kernels and workloads
can lay out their arrays symbolically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.resilience.errors import SimulationError

#: Bytes per machine word (for cache line / bank geometry).
WORD_BYTES = 4

Number = Union[int, float, bool]


class MemoryError_(SimulationError):
    """Out-of-bounds or allocator misuse."""


class MemoryImage:
    """A flat array of words with a bump allocator.

    Addresses are word indices.  ``read``/``write`` are the functional
    interface used by the interpreter and by the simulators' load/store
    paths (timing is modelled separately by the cache hierarchy).
    """

    def __init__(self, size_words: int = 1 << 20):
        if size_words <= 0:
            raise MemoryError_("memory size must be positive")
        self.size = size_words
        self.data = np.zeros(size_words, dtype=np.float64)
        self._next_free = 0
        self._regions: Dict[str, range] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, n_words: int) -> int:
        """Reserve ``n_words`` words under ``name``; return the base address."""
        if name in self._regions:
            raise MemoryError_(f"region {name!r} already allocated")
        if n_words < 0:
            raise MemoryError_("allocation size must be non-negative")
        base = self._next_free
        if base + n_words > self.size:
            raise MemoryError_(
                f"out of memory allocating {n_words} words for {name!r}"
            )
        self._next_free += n_words
        self._regions[name] = range(base, base + n_words)
        return base

    def region(self, name: str) -> range:
        """The word-address range of a named region."""
        return self._regions[name]

    def alloc_array(self, name: str, values: Sequence[Number]) -> int:
        """Allocate a region and initialise it from ``values``."""
        base = self.alloc(name, len(values))
        self.write_block(base, values)
        return base

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check(self, addr: int) -> int:
        addr = int(addr)
        if not 0 <= addr < self.size:
            raise MemoryError_(f"address {addr} out of bounds [0, {self.size})")
        return addr

    def read(self, addr: int) -> float:
        return float(self.data[self._check(addr)])

    def write(self, addr: int, value: Number) -> None:
        self.data[self._check(addr)] = float(value)

    def read_block(self, base: int, n: int) -> np.ndarray:
        self._check(base)
        if n:
            self._check(base + n - 1)
        return self.data[base : base + n].copy()

    def write_block(self, base: int, values: Sequence[Number]) -> None:
        values = np.asarray(values, dtype=np.float64)
        self._check(base)
        if len(values):
            self._check(base + len(values) - 1)
        self.data[base : base + len(values)] = values

    def read_region(self, name: str) -> np.ndarray:
        r = self._regions[name]
        return self.data[r.start : r.stop].copy()

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def clone(self) -> "MemoryImage":
        """Deep copy, including allocator state (for golden comparisons)."""
        other = MemoryImage(self.size)
        other.data[:] = self.data
        other._next_free = self._next_free
        other._regions = dict(self._regions)
        return other

    def byte_address(self, word_addr: int) -> int:
        """The byte address of a word (for cache-line arithmetic)."""
        return int(word_addr) * WORD_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self.data, other.data))

    __hash__ = None
