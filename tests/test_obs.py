"""Tests for the observability layer (repro.obs) and the unified
engine API (repro.engine, repro.host.LaunchStats).

Covers the contracts promised by docs/observability.md:

* the Chrome-trace export is valid JSON with sorted timestamps and
  non-negative durations, and one traced run contains events from all
  five sources (VGIW BBS, Fermi SIMT, SGMF core, L1/L2 caches, DRAM);
* metric-name parity: the same kernel produces the same shared counter
  namespace on every engine;
* the NullTracer fast path allocates nothing;
* EngineRunResult / Engine-registry / LaunchStats backward
  compatibility.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.engine import (
    EngineRunResult,
    Engine,
    UnknownEngineError,
    create_engine,
    engine_names,
    register_engine,
    _REGISTRY,
)
from repro.evalharness.experiments import metrics_table
from repro.evalharness.runner import run_kernel
from repro.host import Device, HostError, LaunchStats
from repro.kernels import saxpy_kernel
from repro.memory.image import MemoryImage
from repro.obs import (
    Metrics,
    NULL_TRACER,
    NullTracer,
    SHARED_COUNTERS,
    SHARED_GAUGES,
    TraceEvent,
    Tracer,
)
from repro.resilience import SimulationHangError, WatchdogConfig
from repro.sgmf import SGMFRunResult
from repro.simt import FermiRunResult
from repro.vgiw import VGIWCore, VGIWRunResult


# ----------------------------------------------------------------------
# One traced, metered cross-machine run shared by the expensive tests.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_run():
    tracer, metrics = Tracer(), Metrics()
    run = run_kernel("bfs/Kernel", scale="tiny", tracer=tracer,
                     metrics=metrics)
    return run, tracer, metrics


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------
def test_ring_buffer_bounded_and_counts_drops():
    tr = Tracer(capacity=4)
    for i in range(10):
        tr.instant(f"e{i}", "test", float(i))
    assert len(tr) == 4
    assert tr.dropped == 6
    # Oldest evicted: the surviving window is the most recent four.
    assert [ev.name for ev in tr.events] == ["e6", "e7", "e8", "e9"]
    assert [ev.name for ev in tr.tail(2)] == ["e8", "e9"]


def test_tracer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_complete_event_clamps_negative_duration():
    tr = Tracer()
    tr.complete("x", "test", ts=10.0, dur=-5.0)
    assert tr.events[0].dur == 0.0


def test_event_brief_is_compact():
    ev = TraceEvent(name="block:b1", cat="vgiw.block", ph="X",
                    ts=100.0, dur=34.0)
    text = ev.brief()
    assert "vgiw.block:block:b1" in text
    assert "@100" in text


# ----------------------------------------------------------------------
# Chrome-trace JSON schema
# ----------------------------------------------------------------------
def test_chrome_trace_schema(traced_run):
    _, tracer, _ = traced_run
    blob = tracer.to_json()
    doc = json.loads(blob)  # must be loadable
    events = doc["traceEvents"]
    assert events, "traced run produced no events"

    timeline = [e for e in events if e["ph"] != "M"]
    assert timeline, "no timeline events (only metadata)"
    # Sorted, non-negative timestamps and durations.
    ts = [e["ts"] for e in timeline]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)
    assert all(e.get("dur", 0) >= 0 for e in timeline)
    # Chrome wants integer pids; our labels ride in metadata events.
    assert all(isinstance(e["pid"], int) for e in timeline)
    meta = {e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"vgiw", "fermi", "sgmf", "mem"} <= meta


def test_trace_covers_all_five_sources(traced_run):
    _, tracer, _ = traced_run
    cats = tracer.categories()
    assert cats.get("vgiw.bbs", 0) > 0, "no BBS reconfiguration events"
    assert cats.get("fermi.simt", 0) > 0, "no SIMT stack events"
    assert cats.get("sgmf.thread", 0) > 0, "no SGMF core events"
    assert cats.get("mem.l1", 0) > 0, "no L1 miss events"
    assert cats.get("mem.l2", 0) > 0, "no L2 miss events"
    assert cats.get("mem.dram", 0) > 0, "no DRAM row-activation events"


def test_trace_dump_roundtrip(tmp_path, traced_run):
    _, tracer, _ = traced_run
    path = tmp_path / "trace.json"
    tracer.dump(str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) >= len(tracer)
    assert doc["otherData"]["dropped_events"] == tracer.dropped


# ----------------------------------------------------------------------
# Metrics: cross-engine name parity
# ----------------------------------------------------------------------
def test_shared_metric_names_on_every_engine(traced_run):
    _, _, metrics = traced_run
    assert {"fermi", "vgiw", "sgmf"} <= set(metrics.scope_names())
    for engine in ("fermi", "vgiw", "sgmf"):
        names = set(metrics.scope(engine).names())
        missing = (set(SHARED_COUNTERS) | set(SHARED_GAUGES)) - names
        assert not missing, f"{engine} missing shared metrics: {missing}"


def test_shared_run_counters_agree_where_physics_agrees(traced_run):
    run, _, metrics = traced_run
    # Every machine ran the same threads, so run.threads must agree.
    per_engine = [metrics.value(f"{e}/run.threads")
                  for e in ("fermi", "vgiw", "sgmf")]
    assert per_engine == [run.n_threads] * 3


def test_metrics_scope_and_value():
    m = Metrics()
    s = m.scope("vgiw")
    s.inc("bbs.reconfigurations", 3)
    s.gauge("run.cycles", 123.0)
    s.observe("block.span", 10.0)
    s.observe("block.span", 30.0)
    assert m.value("vgiw/bbs.reconfigurations") == 3
    assert m.value("vgiw/run.cycles") == 123.0
    assert m.value("vgiw/block.span") == 20.0  # histogram mean
    assert m.value("nope/missing") is None
    assert m.scope_names() == ["vgiw"]
    assert "bbs.reconfigurations = 3" in m.format("vgiw")
    dumped = m.as_dict()
    assert dumped["histograms"]["vgiw/block.span"]["count"] == 2


def test_metrics_table_rows(traced_run):
    _, _, metrics = traced_run
    table = metrics_table(metrics)
    rendered = table.render()
    for name in SHARED_GAUGES + SHARED_COUNTERS:
        assert name in rendered
    assert "Vgiw" in rendered and "Fermi" in rendered and "Sgmf" in rendered


# ----------------------------------------------------------------------
# NullTracer fast path
# ----------------------------------------------------------------------
def test_null_tracer_is_disabled_and_empty():
    nt = NULL_TRACER
    assert isinstance(nt, NullTracer)
    assert nt.enabled is False
    nt.complete("x", "c", 0.0, 1.0, foo=1)
    nt.instant("x", "c", 0.0)
    nt.counter("x", "c", 0.0, v=1)
    assert len(nt) == 0
    assert nt.tail() == ()
    assert nt.events == ()
    assert nt.dropped == 0


def test_null_tracer_allocates_nothing():
    """The disabled fast path must not retain allocations."""
    nt = NullTracer()
    # Warm up any lazy interning.
    nt.instant("warm", "c", 0.0)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for i in range(1000):
            nt.instant("e", "c", 0.0)
            nt.complete("e", "c", 0.0, 1.0)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = after.compare_to(before, "lineno")
    grown = sum(s.size_diff for s in stats if s.size_diff > 0)
    # tracemalloc bookkeeping itself shows up; anything beyond a couple
    # of KiB would mean the no-op path builds per-call objects.
    assert grown < 4096, f"NullTracer retained {grown} bytes"


def test_engines_accept_null_tracer():
    """Passing the NullTracer explicitly must behave exactly like None."""
    k = saxpy_kernel()
    n = 32
    results = []
    for tracer in (None, NULL_TRACER):
        mem = MemoryImage(1 << 12)
        x = mem.alloc_array("x", np.arange(float(n)))
        y = mem.alloc_array("y", np.ones(n))
        out = mem.alloc("out", n)
        res = VGIWCore().run(k, mem, {"a": 2.0, "x": x, "y": y,
                                      "out": out, "n": n}, n,
                             tracer=tracer)
        results.append(res.cycles)
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# EngineRunResult base + engine registry
# ----------------------------------------------------------------------
def test_run_results_share_the_base(traced_run):
    run, tracer, metrics = traced_run
    assert isinstance(run.fermi, FermiRunResult)
    assert isinstance(run.vgiw, VGIWRunResult)
    assert isinstance(run.sgmf, SGMFRunResult)
    for res in (run.fermi, run.vgiw, run.sgmf):
        assert isinstance(res, EngineRunResult)
        for attr in EngineRunResult.REQUIRED_ATTRS:
            assert hasattr(res, attr), f"{res.engine} lacks {attr}"
        assert res.trace is tracer
        assert res.metrics is metrics
        assert 0.0 <= res.l1_hit_rate <= 1.0
        assert res.summary()["engine"] == res.engine
    assert {run.fermi.engine, run.vgiw.engine, run.sgmf.engine} == \
        {"fermi", "vgiw", "sgmf"}


def test_engine_registry_and_protocol():
    assert {"vgiw", "fermi", "sgmf", "interp"} <= set(engine_names())
    for name in ("vgiw", "fermi", "sgmf", "interp"):
        engine = create_engine(name)
        assert isinstance(engine, Engine), name
    with pytest.raises(UnknownEngineError):
        create_engine("tpu")


def test_register_custom_engine_reaches_device():
    class EchoResult(EngineRunResult):
        engine = "echo"
        cycles = 1.0

    class EchoEngine:
        def __init__(self, config=None):
            self.config = config

        def run(self, kernel, memory, params, n_threads, *, watchdog=None,
                faults=None, tracer=None, metrics=None):
            return EchoResult().attach_obs(tracer, metrics)

    register_engine("echo", EchoEngine)
    try:
        assert "echo" in engine_names()
        dev = Device("echo", memory_words=64, optimize=False)
        stats = dev.launch(saxpy_kernel(), 4, a=1.0, x=0, y=0,
                           out=0, n=4)
        assert stats.cycles == 1.0
        assert stats.result.engine == "echo"
    finally:
        _REGISTRY.pop("echo", None)


# ----------------------------------------------------------------------
# LaunchStats deprecation shim
# ----------------------------------------------------------------------
def test_launch_stats_unified_surface():
    tracer, metrics = Tracer(), Metrics()
    dev = Device("vgiw", memory_words=1 << 14, tracer=tracer,
                 metrics=metrics)
    n = 64
    x = dev.array(np.arange(float(n)))
    y = dev.array(np.ones(n))
    out = dev.empty(n)
    stats = dev.launch(saxpy_kernel(), n, a=2.0, x=x, y=y, out=out, n=n)
    assert isinstance(stats, LaunchStats)
    assert stats.cycles == stats.result.cycles > 0
    assert stats.trace is tracer
    assert stats.metrics is metrics
    # Deprecation shim: historical attribute access falls through.
    assert stats.bbs.reconfigurations >= 1
    assert stats.fabric.node_fires > 0
    with pytest.raises(AttributeError):
        stats.no_such_attribute
    assert "LaunchStats" in repr(stats)


def test_interp_backend_reports_no_cycles():
    dev = Device("interp", memory_words=1 << 12, metrics=Metrics())
    n = 16
    x = dev.array(np.arange(float(n)))
    y = dev.array(np.ones(n))
    out = dev.empty(n)
    stats = dev.launch(saxpy_kernel(), n, a=2.0, x=x, y=y, out=out, n=n)
    assert stats.cycles is None
    assert dev.metrics.value("interp/run.threads") == n


def test_unknown_backend_still_hosterror():
    with pytest.raises(HostError, match="unknown backend"):
        Device("definitely-not-a-backend")


# ----------------------------------------------------------------------
# Watchdog snapshots carry the recent trace window
# ----------------------------------------------------------------------
def test_hang_snapshot_attaches_recent_trace():
    tracer = Tracer()
    k = saxpy_kernel()
    n = 256
    mem = MemoryImage(1 << 12)
    x = mem.alloc_array("x", np.arange(float(n)))
    y = mem.alloc_array("y", np.ones(n))
    out = mem.alloc("out", n)
    wd = WatchdogConfig(max_cycles=10.0)  # absurdly tight: must fire
    with pytest.raises(SimulationHangError) as exc_info:
        VGIWCore().run(k, mem, {"a": 2.0, "x": x, "y": y, "out": out,
                                "n": n}, n, watchdog=wd, tracer=tracer)
    snap = exc_info.value.snapshot
    assert snap is not None
    recent = snap.detail.get("recent_trace")
    assert isinstance(recent, list) and recent
    assert all(isinstance(line, str) for line in recent)
    # The watchdog itself leaves a marker in the timeline.
    assert tracer.categories().get("watchdog", 0) >= 1
