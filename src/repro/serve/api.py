"""Request/response types of the execution service (:mod:`repro.serve`).

The serving layer speaks three small value objects:

* :class:`SubmitRequest` — *what* to run: a registry kernel name plus a
  :class:`~repro.evalharness.RunOptions` (the same consolidated options
  object ``run_kernel`` / ``run_suite`` consume).  Optional per-request
  ``deadline_s`` and a ``client`` label for attribution.
* :class:`Ticket` — the service's immediate acknowledgement of a
  submission: the request id to wait on.
* :class:`RunResponse` — the terminal outcome.  *Every* submission gets
  exactly one response; overload and failure arrive as typed degraded
  rows (``status`` of ``"rejected"`` / ``"deadline"`` / ``"degraded"``),
  never as exceptions out of the service.

Result identity
---------------

``run_kernel`` is deterministic, so a response can prove it returned
*the* result (not merely *a* result): :func:`result_digest` hashes the
engine-agnostic run summaries (cycles, memory-system counters per
machine) into a stable content digest.  A batched execution fans the
same digest out to every member request, and the digest equals the one
a serial ``run_kernel`` call with the same options produces — the CI
smoke job and ``tests/test_serve.py`` compare exactly this.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.evalharness.options import RunOptions

__all__ = [
    "LatencyStats",
    "RESPONSE_STATUSES",
    "RunResponse",
    "SubmitRequest",
    "Ticket",
    "result_digest",
]

#: Every terminal state a submission can reach.
RESPONSE_STATUSES: Tuple[str, ...] = ("ok", "cached", "degraded",
                                      "rejected", "deadline")


@dataclass(frozen=True)
class SubmitRequest:
    """One kernel-execution request.

    ``options`` must be *pure*: the live-object fields
    (``RunOptions.LIVE_FIELDS`` — tracer, metrics, cache, faults) are
    owned by the service, which records into its own registries and
    warms its own compile caches; a submission carrying any of them is
    rejected (typed response, not an exception).  ``deadline_s`` is a
    relative budget in host seconds from submission: a request still
    queued when it expires is shed with status ``"deadline"``, and a
    dispatched request's execution is bounded by its remaining budget
    through :func:`~repro.resilience.wall_clock_limit`.  ``want_run``
    asks for the full :class:`~repro.evalharness.KernelRun` on the
    response (digest and summary are always included).
    """

    kernel: str
    options: RunOptions = field(default_factory=RunOptions)
    deadline_s: Optional[float] = None
    want_run: bool = False
    client: str = "anon"


@dataclass(frozen=True)
class Ticket:
    """Acknowledgement of a submission; wait on it for the response."""

    request_id: int
    kernel: str
    submitted_s: float  # wall-clock (time.time) submission stamp


@dataclass
class RunResponse:
    """The terminal outcome of one submission.

    ``status`` is one of :data:`RESPONSE_STATUSES`:

    ``"ok"``
        The kernel ran and verified; ``digest`` / ``summary`` (and
        ``run`` when requested) describe the result.
    ``"cached"``
        The result cache answered at admission — nothing was queued or
        executed.  ``digest`` / ``summary`` / ``run`` carry the stored
        result exactly as an ``"ok"`` response would (the digest equals
        the one a fresh execution produces); ``batch_id`` is ``None``
        and the timing split collapses to the (sub-millisecond)
        admission latency.
    ``"degraded"``
        The kernel was executed but failed (verification, hang,
        exhausted worker-crash budget...); ``error_type`` / ``error``
        carry the diagnosis, mirroring a sweep's degraded rows.
    ``"rejected"``
        Admission control refused the submission (queue full, unknown
        kernel, live options fields, service stopped) — nothing ran.
    ``"deadline"``
        The request's ``deadline_s`` expired while it was still queued;
        it was shed without executing.

    The timing split (all host seconds) is ``queue_s`` (submission →
    dispatch), ``compile_s`` (workload build + compile-cache warm
    inside the worker), ``execute_s`` (the measurement run proper) and
    ``total_s`` (submission → response).  ``batch_id`` / ``batch_size``
    identify the coalesced execution that served this request
    (``batch_size > 1`` means the result was computed once and fanned
    out).
    """

    request_id: int
    kernel: str
    status: str
    client: str = "anon"
    digest: Optional[str] = None
    summary: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    queue_s: float = 0.0
    compile_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    batch_id: Optional[int] = None
    batch_size: int = 0
    run: Any = None  # KernelRun when want_run was set and status == "ok"

    @property
    def ok(self) -> bool:
        """True when the response carries a valid result (a fresh
        ``"ok"`` execution or a ``"cached"`` replay of one)."""
        return self.status in ("ok", "cached")

    def identity(self) -> Dict[str, Any]:
        """The timing-independent identity row (what CI goldens hold)."""
        return {
            "kernel": self.kernel,
            "status": self.status,
            "digest": self.digest,
        }


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other numerics for json.dumps."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


def result_digest(run: Any) -> str:
    """Stable content digest of a :class:`~repro.evalharness.KernelRun`.

    Hashes the three engines' engine-agnostic summaries (cycles plus
    the memory-system counters) as sorted-keys JSON.  ``run_kernel`` is
    deterministic, so equal requests yield equal digests — across
    serve/serial, across batching decisions, across workers.
    """
    payload = {
        "kernel": run.name,
        "n_threads": run.n_threads,
        "fermi": run.fermi.summary(),
        "vgiw": run.vgiw.summary(),
        "sgmf": None if run.sgmf is None else run.sgmf.summary(),
    }
    blob = json.dumps(payload, sort_keys=True, default=_jsonable)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_summary(run: Any) -> Dict[str, Any]:
    """Small JSON-able summary for a response (mirrors the journal's)."""
    return {
        "fermi_cycles": run.fermi.cycles,
        "vgiw_cycles": run.vgiw.cycles,
        "sgmf_cycles": None if run.sgmf is None else run.sgmf.cycles,
    }


class LatencyStats:
    """Raw-sample latency accumulator with percentile readout.

    The metric registry's :class:`~repro.obs.metrics.Histogram` keeps
    only count/sum/min/max (cheap to merge across processes); a serving
    report needs real tail percentiles, so the service additionally
    feeds every sample into one of these per timing component.
    Nearest-rank percentiles over the sorted samples — deterministic
    and exact for the sample sizes a load run produces.
    """

    def __init__(self) -> None:
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]); 0.0 when empty."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                    "max": 0.0}
        return {
            "count": len(self.samples),
            "mean": sum(self.samples) / len(self.samples),
            "p50": self.p50,
            "p99": self.p99,
            "max": max(self.samples),
        }
