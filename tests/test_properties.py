"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import MemoryConfig
from repro.memory import Cache, DRAM, MemoryImage
from repro.vgiw import ControlVectorTable, iter_batch_tids, make_batches


# ----------------------------------------------------------------------
# Batch protocol: pack/unpack is the identity on thread-ID sets.
# ----------------------------------------------------------------------
@given(st.sets(st.integers(min_value=0, max_value=2000), max_size=100))
def test_batch_roundtrip(tids):
    batches = make_batches(tids)
    unpacked = sorted(
        t for base, bm in batches for t in iter_batch_tids(base, bm)
    )
    assert unpacked == sorted(tids)
    # Bases are word-aligned and bitmaps fit one CVT word.
    for base, bm in batches:
        assert base % 64 == 0
        assert 0 < bm < (1 << 64)


# ----------------------------------------------------------------------
# CVT: OR-merge + read-and-reset preserve exactly the registered set,
# and the one-vector-per-thread invariant holds for disjoint updates.
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 255)),
        max_size=120,
    )
)
def test_cvt_registration_preserves_threads(pairs):
    cvt = ControlVectorTable(n_blocks=4, n_threads=256)
    registered = {}
    for block_id, tid in pairs:
        if tid in registered:
            continue  # a thread registers in at most one vector
        registered[tid] = block_id
        base = (tid // 64) * 64
        cvt.or_batch(block_id, base, 1 << (tid - base))
    cvt.check_invariant()
    for block_id in range(4):
        got = sorted(
            t for base, bm in cvt.pop_batches(block_id)
            for t in iter_batch_tids(base, bm)
        )
        want = sorted(t for t, b in registered.items() if b == block_id)
        assert got == want
        assert cvt.is_empty(block_id)


# ----------------------------------------------------------------------
# Cache timing model: completion times are sane, and the tag state is a
# subset of everything ever accessed.
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(0, 255),        # line address
            st.booleans(),              # write?
            st.floats(0, 1000, allow_nan=False),
        ),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_cache_completion_monotone_per_access(accesses):
    dram = DRAM(MemoryConfig())
    cache = Cache("L1", 4096, 128, 4, 8, 4, dram, write_back=True)
    accesses = sorted(accesses, key=lambda a: a[2])
    for line, is_write, t in accesses:
        done = cache.access(t, line, is_write)
        assert done >= t + 1  # at least bank + latency
    stats = cache.stats
    assert stats.accesses == len(accesses)
    assert stats.misses <= stats.accesses


@given(
    st.lists(st.integers(0, 63), min_size=1, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_cache_repeat_access_hits(lines):
    cache = Cache("L1", 64 * 1024, 128, 8, 8, 4, None, write_back=True)
    t = 0.0
    for line in lines:
        t = cache.access(t + 1, line, False)
    # Working set (<= 64 lines) fits easily in 512 lines: second sweep
    # must be all hits.
    before = cache.stats.read_misses
    for line in lines:
        t = cache.access(t + 1, line, False)
    assert cache.stats.read_misses == before


# ----------------------------------------------------------------------
# DRAM: every access completes after it starts; bank calendars never
# overlap.
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.floats(0, 5000, allow_nan=False)),
        min_size=1, max_size=150,
    )
)
@settings(max_examples=50, deadline=None)
def test_dram_bank_calendar_no_overlap(accesses):
    cfg = MemoryConfig()
    dram = DRAM(cfg)
    for line, t in accesses:
        done = dram.access(t, line, False)
        assert done > t
    for bank in dram._banks.values():
        intervals = sorted(bank.intervals)
        for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
            assert e1 <= s2, "bank served two accesses at once"


# ----------------------------------------------------------------------
# Memory image: block writes and reads round-trip.
# ----------------------------------------------------------------------
@given(
    st.integers(0, 100),
    st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=50),
)
def test_memory_image_roundtrip(base, values):
    mem = MemoryImage(256)
    mem.write_block(base % 200, values[: 256 - base % 200])
    chunk = values[: 256 - base % 200]
    got = mem.read_block(base % 200, len(chunk))
    np.testing.assert_array_equal(got, np.asarray(chunk))
