"""PF — particle filter ``normalize_weights_kernel`` (Rodinia), paper
Table 2: 5 basic blocks.

Normalises every particle's weight by the pre-reduced weight sum, and
thread 0 additionally seeds the systematic-resampling offset ``u[0]``
(Rodinia computes the sum reduction in a prior kernel; it arrives here
as the ``sum_weights`` parameter)."""

from __future__ import annotations

import numpy as np

from repro.ir import Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def normalize_weights_kernel() -> Kernel:
    kb = KernelBuilder(
        "normalize_weights_kernel",
        params=["weights", "u", "sum_weights", "u1", "n"],
    )
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        w = kb.load(kb.param("weights") + i)
        kb.store(kb.param("weights") + i, w / kb.fparam("sum_weights"))
        with kb.if_(i == 0):
            kb.store(kb.param("u"), kb.fparam("u1") / kb.i2f(kb.param("n")))
    return kb.build()


def make_workload(scale: str = "small", seed: int = 81) -> Workload:
    n = pick(scale, 256, 4096, 16384)
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.1, 1.0, n)
    sum_weights = float(weights.sum())
    u1 = float(rng.uniform())

    mem = MemoryImage(n + 64)
    b_w = mem.alloc_array("weights", weights)
    b_u = mem.alloc_array("u", [0.0])

    return Workload(
        name="particlefilter/normalize_weights",
        app="PF",
        kernel=normalize_weights_kernel(),
        memory=mem,
        params={
            "weights": b_w, "u": b_u, "sum_weights": sum_weights,
            "u1": u1, "n": n,
        },
        n_threads=n,
        expected={
            "weights": weights / sum_weights,
            "u": np.array([u1 / n]),
        },
        paper_blocks=5,
    )
