"""Reference interpreter for the virtual kernel ISA.

Executes a kernel thread-by-thread, sequentially, against a
:class:`~repro.memory.image.MemoryImage`.  It is the golden functional
model: every timing simulator's final memory image is asserted equal to
the interpreter's in the test suite.

The interpreter also records, per thread, the sequence of basic blocks
visited.  The SGMF model and several analyses consume these traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.ir.instr import EVAL, Op, TermKind, coerce_i64
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm, Operand, Reg, TID_REG, is_param_reg, PARAM_PREFIX
from repro.ir.vecops import (
    addr_batch,
    f2i_array,
    f64_batch,
    hazard_key,
    scalar_exec_requested,
    stores_after_loads,
    vec_eval,
)
from repro.memory.image import MemoryImage
from repro.resilience.errors import SimulationError

Number = Union[int, float, bool]


class InterpreterError(SimulationError):
    """Raised on runaway or ill-behaved kernels."""


@dataclass
class ThreadTrace:
    """Per-thread execution record."""

    tid: int
    blocks: List[str] = field(default_factory=list)
    instructions: int = 0
    loads: int = 0
    stores: int = 0


@dataclass
class InterpResult:
    """Aggregate result of interpreting a kernel launch."""

    kernel: Kernel
    n_threads: int
    traces: List[ThreadTrace]
    block_visits: Counter = field(default_factory=Counter)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.traces)

    @property
    def total_loads(self) -> int:
        return sum(t.loads for t in self.traces)

    @property
    def total_stores(self) -> int:
        return sum(t.stores for t in self.traces)

    def visits_of(self, tid: int, block: str) -> int:
        return sum(1 for b in self.traces[tid].blocks if b == block)


def _coerce(value: Number, dtype: DType) -> Number:
    if dtype is DType.INT:
        return coerce_i64(value)
    if dtype is DType.FLOAT:
        return float(value)
    return bool(value)


class Interpreter:
    """Sequential reference executor.

    Parameters
    ----------
    kernel:
        The kernel to run.
    memory:
        Memory image the kernel reads and writes.
    params:
        Launch-parameter values by name; must cover ``kernel.params``.
    max_block_visits:
        Per-thread safety bound against runaway loops.
    """

    def __init__(self, kernel: Kernel, memory: MemoryImage,
                 params: Dict[str, Number], max_block_visits: int = 1_000_000):
        missing = [p for p in kernel.params if p not in params]
        if missing:
            raise InterpreterError(f"missing parameter values: {missing}")
        self.kernel = kernel
        self.memory = memory
        self.params = {
            name: _coerce(params[name], kernel.param_dtypes[name])
            for name in kernel.params
        }
        self.max_block_visits = max_block_visits
        # Precompile each block into flat rows so the per-thread walk
        # never re-dispatches on operand kinds (immediates and launch
        # parameters fold into constants — parameters are fixed at
        # construction).  Purely a host-side speedup; semantics are
        # identical to the instruction-at-a-time path.
        self._plan = {
            name: self._compile_block(block)
            for name, block in kernel.blocks.items()
        }

    def _compile_block(self, block):
        """Flatten one basic block into interpreter rows.

        Row layouts (sources are ``(mode, payload)`` pairs: 0 = const
        value, 1 = register name, 2 = thread id; ``dt`` is 1 = int,
        2 = float, 0 = bool)::

            (0, asrc, dst, dt)           LOAD
            (1, asrc, vsrc)              STORE
            (2, fn, srcs, dst, dt, op)   everything else

        The trailing ``op`` lets the vectorized wave executor dispatch
        the same row through :func:`repro.ir.vecops.vec_eval`.

        Returns ``(rows, n_instrs, n_loads, n_stores, tcode, cond,
        true_target, false_target)`` with ``tcode`` 0 = RET, 1 = JMP,
        2 = BR.
        """
        params = self.params

        def prep(operand):
            if isinstance(operand, Imm):
                return (0, operand.value)
            if operand == TID_REG:
                return (2, 0)
            if is_param_reg(operand):
                return (0, params[operand.name[len(PARAM_PREFIX):]])
            return (1, operand.name)

        rows = []
        n_loads = n_stores = 0
        for instr in block.instrs:
            dt = (1 if instr.dtype is DType.INT
                  else 2 if instr.dtype is DType.FLOAT else 0)
            if instr.op is Op.LOAD:
                rows.append((0, prep(instr.srcs[0]), instr.dst, dt))
                n_loads += 1
            elif instr.op is Op.STORE:
                rows.append((1, prep(instr.srcs[0]), prep(instr.srcs[1])))
                n_stores += 1
            else:
                rows.append((2, EVAL[instr.op],
                             tuple(prep(s) for s in instr.srcs),
                             instr.dst, dt, instr.op))
        term = block.terminator
        tcode = (0 if term.kind is TermKind.RET
                 else 1 if term.kind is TermKind.JMP else 2)
        cond = prep(term.cond) if tcode == 2 else None
        return (tuple(rows), len(block.instrs), n_loads, n_stores,
                tcode, cond, term.true_target, term.false_target)

    # ------------------------------------------------------------------
    def _fetch(self, regs: Dict[str, Number], tid: int, operand: Operand) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        if operand == TID_REG:
            return tid
        if is_param_reg(operand):
            return self.params[operand.name[len(PARAM_PREFIX):]]
        try:
            return regs[operand.name]
        except KeyError:
            raise InterpreterError(
                f"read of undefined register %{operand.name} "
                f"in kernel {self.kernel.name}"
            ) from None

    def run_thread(self, tid: int) -> ThreadTrace:
        """Execute one thread to completion; return its trace."""
        kernel = self.kernel
        plan = self._plan
        mem_read = self.memory.read
        mem_write = self.memory.write
        regs: Dict[str, Number] = {}
        trace = ThreadTrace(tid)
        visited = trace.blocks
        block_name: Optional[str] = kernel.entry
        visits = 0
        max_visits = self.max_block_visits
        n_instrs = n_loads = n_stores = 0
        try:
            while block_name is not None:
                visits += 1
                if visits > max_visits:
                    raise InterpreterError(
                        f"thread {tid} exceeded {max_visits} block visits "
                        f"in kernel {kernel.name} (runaway loop?)"
                    )
                (rows, bi, bl, bs, tcode, cond,
                 true_target, false_target) = plan[block_name]
                visited.append(block_name)
                n_instrs += bi
                n_loads += bl
                n_stores += bs
                for row in rows:
                    tag = row[0]
                    if tag == 2:  # ALU / SFU
                        fn, srcs, dst, dt = row[1], row[2], row[3], row[4]
                        v = fn(*[
                            regs[p] if m == 1 else p if m == 0 else tid
                            for m, p in srcs
                        ])
                        regs[dst] = (coerce_i64(v) if dt == 1
                                     else float(v) if dt == 2 else bool(v))
                    elif tag == 0:  # LOAD
                        _, (am, ap), dst, dt = row
                        v = mem_read(int(
                            regs[ap] if am == 1 else ap if am == 0 else tid
                        ))
                        regs[dst] = (coerce_i64(v) if dt == 1
                                     else float(v) if dt == 2 else bool(v))
                    else:  # STORE
                        _, (am, ap), (vm, vp) = row
                        mem_write(
                            int(regs[ap] if am == 1
                                else ap if am == 0 else tid),
                            regs[vp] if vm == 1 else vp if vm == 0 else tid,
                        )
                if tcode == 0:
                    block_name = None
                elif tcode == 1:
                    block_name = true_target
                else:
                    cm, cp = cond
                    taken = bool(regs[cp] if cm == 1
                                 else cp if cm == 0 else tid)
                    block_name = true_target if taken else false_target
        except KeyError as exc:
            raise InterpreterError(
                f"read of undefined register %{exc.args[0]} "
                f"in kernel {kernel.name}"
            ) from None
        trace.instructions = n_instrs
        trace.loads = n_loads
        trace.stores = n_stores
        return trace

    # ------------------------------------------------------------------
    # Vectorized wave execution
    # ------------------------------------------------------------------
    @staticmethod
    def _wave_write(regs, defined, dst, wave, vals, n_threads):
        """Scatter a batch result into the per-register thread arrays,
        promoting to ``object`` dtype on a cross-block dtype conflict."""
        arr = regs.get(dst)
        if arr is None:
            arr = np.zeros(n_threads, vals.dtype)
            regs[dst] = arr
            defined[dst] = np.zeros(n_threads, bool)
        elif arr.dtype != vals.dtype:
            if arr.dtype.kind != "O":
                obj = np.empty(n_threads, object)
                obj[:] = arr.tolist()
                arr = regs[dst] = obj
            vals = np.array(vals.tolist(), dtype=object)
        arr[wave] = vals
        defined[dst][wave] = True

    @staticmethod
    def _wave_values(regs, defined, wave, mode, payload):
        """Fetch one operand for a wave: a register's thread slice, a
        constant, or the tid array.  ``None`` means some thread reads an
        undefined register (scalar fallback reproduces the error)."""
        if mode == 1:
            d = defined.get(payload)
            if d is None or not d[wave].all():
                return None
            return regs[payload][wave]
        if mode == 0:
            return payload
        return wave

    def _run_wave(self, n_threads: int) -> Optional[InterpResult]:
        """Execute all threads as vectorized waves.

        Threads sharing a basic block evaluate each instruction as one
        :func:`repro.ir.vecops.vec_eval` batch.  Stores are buffered and
        committed in ``(tid, program order)`` — the scalar thread-major
        order — and a store to an address some earlier-or-equal ``(tid,
        program position)`` loaded (:func:`stores_after_loads`) aborts
        the wave (returns ``None``) so the sequential path, whose
        results are the contract, reruns from untouched memory.  The
        same bail-out covers undefined registers, invalid addresses and
        visit-bound overruns: the scalar path raises the exact errors.
        """
        kernel = self.kernel
        plan = self._plan
        data = self.memory.data
        size = data.shape[0]
        max_visits = self.max_block_visits
        regs: Dict[str, np.ndarray] = {}
        defined: Dict[str, np.ndarray] = {}
        visits = np.zeros(n_threads, np.int64)
        blocks_trace: List[List[str]] = [[] for _ in range(n_threads)]
        counts = np.zeros((n_threads, 3), np.int64)
        load_log: List = []  # (wave, addrs, seq), in wave order
        store_log: List = []  # (wave, addrs, f64 values), in wave order
        store_seq: List[int] = []
        seq = 0  # program-order counter shared by the hazard keys
        frontier: Dict[str, np.ndarray] = {
            kernel.entry: np.arange(n_threads, dtype=np.int64)
        }
        while frontier:
            block_name, wave = frontier.popitem()
            (rows, bi, bl, bs, tcode, cond,
             true_target, false_target) = plan[block_name]
            visits[wave] += 1
            if int(visits[wave].max()) > max_visits:
                return None
            for t in wave.tolist():
                blocks_trace[t].append(block_name)
            counts[wave, 0] += bi
            counts[wave, 1] += bl
            counts[wave, 2] += bs
            n = wave.shape[0]
            for row in rows:
                seq += 1
                tag = row[0]
                if tag == 2:  # ALU / SFU
                    srcs, dst, dt, op = row[2], row[3], row[4], row[5]
                    args = []
                    for m, p in srcs:
                        v = self._wave_values(regs, defined, wave, m, p)
                        if v is None and m == 1:
                            return None
                        args.append(v)
                    vals = vec_eval(op, tuple(args), dt, n)
                    self._wave_write(regs, defined, dst, wave, vals,
                                     n_threads)
                elif tag == 0:  # LOAD
                    am, ap = row[1]
                    a = self._wave_values(regs, defined, wave, am, ap)
                    if a is None and am == 1:
                        return None
                    addrs = addr_batch(a, n, size)
                    if addrs is None:
                        return None
                    load_log.append((wave, addrs, seq))
                    raw = data[addrs]
                    dt = row[3]
                    vals = (f2i_array(raw) if dt == 1
                            else raw if dt == 2 else raw != 0)
                    self._wave_write(regs, defined, row[2], wave, vals,
                                     n_threads)
                else:  # STORE
                    am, ap = row[1]
                    a = self._wave_values(regs, defined, wave, am, ap)
                    if a is None and am == 1:
                        return None
                    addrs = addr_batch(a, n, size)
                    if addrs is None:
                        return None
                    vm, vp = row[2]
                    v = self._wave_values(regs, defined, wave, vm, vp)
                    if v is None and vm == 1:
                        return None
                    fvals = f64_batch(v, n)
                    if fvals is None:
                        return None
                    store_log.append((wave, addrs, fvals))
                    store_seq.append(seq)
            if tcode == 0:
                continue
            if tcode == 1:
                nxt = frontier.get(true_target)
                frontier[true_target] = (wave if nxt is None
                                         else np.concatenate((nxt, wave)))
                continue
            cm, cp = cond
            cv = self._wave_values(regs, defined, wave, cm, cp)
            if cv is None and cm == 1:
                return None
            if isinstance(cv, np.ndarray):
                if cv.dtype.kind == "b":
                    taken = cv
                elif cv.dtype.kind in "if":
                    taken = cv != 0
                else:
                    taken = np.array([bool(x) for x in cv.tolist()])
            else:
                taken = np.full(n, bool(cv))
            for target, part in ((true_target, wave[taken]),
                                 (false_target, wave[~taken])):
                if part.shape[0]:
                    nxt = frontier.get(target)
                    frontier[target] = (part if nxt is None
                                        else np.concatenate((nxt, part)))
        if store_log and load_log and not stores_after_loads(
            np.concatenate([a for _, a, _ in load_log]),
            np.concatenate([hazard_key(w, s) for w, _, s in load_log]),
            np.concatenate([a for _, a, _ in store_log]),
            np.concatenate([hazard_key(w, _s)
                            for (w, _, _), _s in zip(store_log, store_seq)]),
        ):
            return None
        # Commit stores in scalar (thread-major, then program) order so
        # the per-address last writer matches the sequential contract.
        if store_log:
            all_t = np.concatenate([w for w, _, _ in store_log])
            all_a = np.concatenate([a for _, a, _ in store_log])
            all_v = np.concatenate([v for _, _, v in store_log])
            all_s = np.concatenate([
                np.full(w.shape[0], s, np.int64)
                for (w, _, _), s in zip(store_log, store_seq)
            ])
            order = np.lexsort((all_s, all_t))
            data[all_a[order]] = all_v[order]
        traces = []
        for tid in range(n_threads):
            tr = ThreadTrace(tid, blocks_trace[tid])
            tr.instructions = int(counts[tid, 0])
            tr.loads = int(counts[tid, 1])
            tr.stores = int(counts[tid, 2])
            traces.append(tr)
        result = InterpResult(kernel, n_threads, traces)
        for t in traces:
            result.block_visits.update(t.blocks)
        return result

    def run(self, n_threads: int) -> InterpResult:
        """Execute ``n_threads`` threads (TIDs 0..n-1).

        By default threads at the same basic block are evaluated as one
        numpy batch through :mod:`repro.ir.vecops`; results are
        identical to the sequential walk, which remains the fallback
        (and the forced path under ``REPRO_SCALAR_EXEC=1``) for
        hazardous or erroneous kernels.
        """
        if n_threads >= 4 and not scalar_exec_requested():
            result = self._run_wave(n_threads)
            if result is not None:
                return result
        traces = [self.run_thread(tid) for tid in range(n_threads)]
        result = InterpResult(self.kernel, n_threads, traces)
        for t in traces:
            result.block_visits.update(t.blocks)
        return result


def interpret(kernel: Kernel, memory: MemoryImage, params: Dict[str, Number],
              n_threads: int, max_block_visits: int = 1_000_000) -> InterpResult:
    """Convenience wrapper: build an :class:`Interpreter` and run it."""
    return Interpreter(kernel, memory, params, max_block_visits).run(n_threads)
