"""``RunOptions``: one value object for every execution option.

``run_kernel`` grew to a 13-keyword signature and ``run_suite`` to a
15-keyword one; every new capability (watchdogs, fault campaigns,
tracing, compile caching, journals, checkpoints) widened both, and the
new :mod:`repro.serve` request types would have had to mirror the whole
sprawl a third time.  :class:`RunOptions` consolidates the execution
options into a single frozen dataclass that ``run_kernel``,
``run_suite``, the ``repro.evalharness`` CLI, the run journal, and the
serving layer all consume::

    from repro.evalharness import RunOptions, run_kernel

    opts = RunOptions(scale="tiny", verify=True)
    run = run_kernel("nn/euclid", options=opts)

Legacy keyword call sites keep working through one documented adapter:
``run_kernel(name, scale, verify=..., watchdog=..., ...)`` is folded
into a ``RunOptions`` by :meth:`RunOptions.from_kwargs` and emits a
single ``DeprecationWarning`` naming the keywords used (``scale`` —
positional or keyword — stays first-class and does not warn).

Field groups
------------

========================  ==============================================
workload                  ``scale``
correctness               ``verify`` (golden-interpreter check),
                          ``optimize`` (per-launch optimisation pipeline)
architecture              ``vgiw_config`` / ``fermi_config`` /
                          ``sgmf_config``
resilience                ``watchdog``, ``retry``, ``isolate``,
                          ``faults`` (single-run injector),
                          ``inject`` (per-kernel suite campaigns),
                          ``timeout`` (host-seconds wall-clock budget)
observability             ``tracer``, ``metrics``, ``trace_path``
compilation               ``cache``, ``cache_dir``
result caching            ``result_cache``, ``result_cache_dir``,
                          ``validate_cache_fraction``,
                          ``validate_cache_seed``
crash safety              ``journal``, ``resume``,
                          ``checkpoint_every``, ``checkpoint_dir``
parallelism               ``jobs``
========================  ==============================================

Suite-only fields (``retry``, ``isolate``, ``inject``, ``trace_path``,
``journal``, ``resume``, ``jobs``) are ignored by ``run_kernel``; the
legacy adapter still rejects them there (they were never accepted), so
no call site silently changes meaning.

The class is frozen: derive variants with :meth:`replace`
(``opts.replace(scale="medium")``).  :meth:`fingerprint` returns a
stable content key over the *pure* fields — the batching scheduler in
:mod:`repro.serve` uses it to decide which requests may share one
execution.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping as _Mapping
from dataclasses import dataclass, fields, is_dataclass, \
    replace as _dc_replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.resilience.errors import OptionKeyError

__all__ = ["RunOptions", "option_key"]


def option_key(value: Any) -> str:
    """Canonical, process-stable content key for one option value.

    The fingerprint used to key object-valued fields via ``repr``; any
    object without a stable value-``repr`` collapsed to
    ``<... at 0x...>``, which differs per process *and per object* —
    equal submissions then never batched in :mod:`repro.serve` and
    would never hit the result cache.  This helper keys values
    recursively by *content* instead:

    * scalars (``None``/bool/int/float/str/bytes) — their ``repr``;
    * objects with an explicit ``cache_key()`` hook — the hook's value
      (the documented override for exotic config types);
    * dataclass instances — class name plus every field keyed
      recursively (declaration order, which is stable);
    * mappings — sorted ``key: value`` pairs, both keyed recursively;
    * sequences/sets — element-wise (sets sorted);
    * anything else with a custom, address-free ``repr`` — that repr.

    An object matching none of the above (default object ``repr``, or
    a custom one still embedding ``at 0x...``) raises a typed
    :class:`~repro.resilience.OptionKeyError` instead of silently
    producing a process-unique key.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    hook = getattr(value, "cache_key", None)
    if callable(hook):
        return f"{type(value).__qualname__}.cache_key({hook()!r})"
    if is_dataclass(value) and not isinstance(value, type):
        inner = ", ".join(
            f"{f.name}={option_key(getattr(value, f.name))}"
            for f in fields(value)
        )
        return f"{type(value).__qualname__}({inner})"
    if isinstance(value, _Mapping):
        items = sorted(
            (option_key(k), option_key(v)) for k, v in value.items()
        )
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(option_key(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(option_key(v) for v in value)) + "}"
    rep = repr(value)
    if type(value).__repr__ is object.__repr__ or " at 0x" in rep:
        raise OptionKeyError(
            f"cannot build a stable key for {type(value).__qualname__} "
            f"(its repr embeds a memory address); make it a dataclass "
            f"or give it a cache_key() method",
            value_type=type(value).__qualname__,
        )
    return rep

#: Legacy keywords ``run_kernel`` historically accepted (beyond scale).
KERNEL_KWARGS: Tuple[str, ...] = (
    "verify", "optimize", "vgiw_config", "fermi_config", "sgmf_config",
    "watchdog", "faults", "tracer", "metrics", "cache",
    "checkpoint_every", "checkpoint_dir",
)

#: Legacy keywords ``run_suite`` historically accepted (beyond scale).
SUITE_KWARGS: Tuple[str, ...] = (
    "verify", "isolate", "watchdog", "retry", "inject", "tracer",
    "metrics", "jobs", "cache", "cache_dir", "trace_path", "journal",
    "resume", "timeout", "checkpoint_every", "checkpoint_dir",
)


@dataclass(frozen=True)
class RunOptions:
    """Frozen bundle of every execution option (see module docstring)."""

    # -- workload ------------------------------------------------------
    scale: str = "small"
    # -- correctness ---------------------------------------------------
    verify: bool = True
    optimize: bool = True
    # -- architecture configs ------------------------------------------
    vgiw_config: Optional[Any] = None
    fermi_config: Optional[Any] = None
    sgmf_config: Optional[Any] = None
    # -- resilience ----------------------------------------------------
    watchdog: Optional[Any] = None
    retry: Optional[Any] = None
    isolate: bool = True
    faults: Optional[Any] = None
    inject: Optional[Mapping[str, Any]] = None
    timeout: Optional[float] = None
    # -- observability -------------------------------------------------
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None
    trace_path: Optional[str] = None
    # -- compilation ---------------------------------------------------
    cache: Optional[Any] = None
    cache_dir: Optional[str] = None
    # -- result caching ------------------------------------------------
    result_cache: Optional[Any] = None
    result_cache_dir: Optional[str] = None
    validate_cache_fraction: float = 0.0
    validate_cache_seed: int = 0
    # -- crash safety --------------------------------------------------
    journal: Optional[str] = None
    resume: bool = False
    checkpoint_every: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    # -- parallelism ---------------------------------------------------
    jobs: int = 1

    # -- construction --------------------------------------------------
    @classmethod
    def from_kwargs(cls, _warn: bool = True, _allowed: Optional[Tuple[str, ...]] = None,
                    **kwargs: Any) -> "RunOptions":
        """Fold a legacy keyword call into a :class:`RunOptions`.

        This is *the* adapter behind the deprecated ``run_kernel`` /
        ``run_suite`` keyword surface: unknown names raise ``TypeError``
        (exactly as the old signatures did), and any accepted legacy
        keyword emits one ``DeprecationWarning`` listing the names used.
        ``scale`` is exempt — it remains first-class.  Pass
        ``_warn=False`` for internal, non-deprecated construction.
        """
        allowed = set(_allowed if _allowed is not None
                      else tuple(f.name for f in fields(cls)))
        allowed.add("scale")
        unknown = sorted(set(kwargs) - allowed)
        if unknown:
            raise TypeError(
                f"unexpected keyword argument(s): {', '.join(unknown)}"
            )
        legacy = sorted(set(kwargs) - {"scale"})
        if legacy and _warn:
            warnings.warn(
                f"passing execution options as keywords "
                f"({', '.join(legacy)}) is deprecated; construct a "
                f"repro.evalharness.RunOptions and pass options=...",
                DeprecationWarning, stacklevel=3,
            )
        return cls(**kwargs)

    def to_kwargs(self, include_defaults: bool = False) -> Dict[str, Any]:
        """The options as the historical keyword mapping.

        By default only non-default fields are emitted, so the result
        round-trips through :meth:`from_kwargs` and reads like the
        minimal legacy call.  ``include_defaults=True`` emits every
        field.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if include_defaults or value != f.default:
                out[f.name] = value
        return out

    def replace(self, **changes: Any) -> "RunOptions":
        """A copy with ``changes`` applied (the class is frozen)."""
        return _dc_replace(self, **changes)

    # -- identity ------------------------------------------------------
    #: fields that carry live, process-local objects; excluded from the
    #: fingerprint and forbidden in repro.serve submissions (the service
    #: owns its own registries and caches).
    LIVE_FIELDS: Tuple[str, ...] = ("tracer", "metrics", "cache", "faults",
                                    "result_cache")

    def fingerprint(self) -> str:
        """Stable content key over the pure (value-like) fields.

        Two options objects with equal fingerprints request the same
        execution semantics: same scale, verification, optimisation,
        architecture configs, watchdog/retry/fault campaign, and
        timeout.  Reporting/persistence knobs that cannot change a
        result (``trace_path``, ``journal``, ``resume``, ``jobs``,
        ``cache_dir``, ``result_cache_dir``, validation sampling,
        checkpoints) are excluded, as are the live-object fields.
        :mod:`repro.serve` batches requests whose kernel and
        fingerprint match, and the result cache keys entries on it —
        both require the key to be identical *across processes*, so
        every field value is keyed canonically by content via
        :func:`option_key` (an unkeyable object raises
        :class:`~repro.resilience.OptionKeyError`).
        """
        skip = set(self.LIVE_FIELDS) | {
            "trace_path", "journal", "resume", "jobs", "cache_dir",
            "checkpoint_every", "checkpoint_dir", "result_cache_dir",
            "validate_cache_fraction", "validate_cache_seed",
        }
        parts = []
        for f in fields(self):
            if f.name in skip:
                continue
            try:
                parts.append(f"{f.name}={option_key(getattr(self, f.name))}")
            except OptionKeyError as exc:
                raise OptionKeyError(
                    f"RunOptions.{f.name} cannot be fingerprinted: {exc}",
                    field=f.name,
                ) from exc
        return "|".join(parts)

    def summary(self) -> Dict[str, Any]:
        """Small, JSON-able description of the non-default fields.

        Scalar fields are emitted verbatim; object-valued fields
        (configs, watchdog, live registries) as their ``repr``.  The
        run journal stamps this into its header line so a resumed
        sweep's options are greppable on disk.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value == f.default:
                continue
            if isinstance(value, (str, int, float, bool)) or value is None:
                out[f.name] = value
            else:
                out[f.name] = repr(value)
        return out

    def live_fields_set(self) -> Tuple[str, ...]:
        """Names of :data:`LIVE_FIELDS` that are non-``None`` here."""
        return tuple(n for n in self.LIVE_FIELDS
                     if getattr(self, n) is not None)
