"""Tests for suite-result serialisation."""

import json

import pytest

from repro.evalharness.runner import run_kernel
from repro.evalharness.serialize import run_to_dict, runs_to_dict, runs_to_json


@pytest.fixture(scope="module")
def runs():
    return {
        "nn/euclid": run_kernel("nn/euclid", "tiny"),
        "hotspot/hotspot_kernel": run_kernel("hotspot/hotspot_kernel", "tiny"),
    }


def test_run_to_dict_shape(runs):
    d = run_to_dict(runs["nn/euclid"])
    assert d["name"] == "nn/euclid"
    assert d["fermi"]["cycles"] > 0
    assert d["vgiw"]["cycles"] > 0
    assert 0 < d["fermi"]["simd_efficiency"] <= 1
    assert d["sgmf_mappable"] is True
    assert "sgmf" in d
    assert d["vgiw"]["energy_levels"]["core"] <= d["vgiw"]["energy_levels"]["system"]


def test_unmappable_kernel_has_no_sgmf_section(runs):
    d = run_to_dict(runs["hotspot/hotspot_kernel"])
    assert d["sgmf_mappable"] is False
    assert "sgmf" not in d
    assert d["speedup_vs_sgmf"] is None


def test_json_roundtrip(runs):
    text = runs_to_json(runs)
    parsed = json.loads(text)
    assert set(parsed) == set(runs)
    assert parsed == runs_to_dict(runs)
