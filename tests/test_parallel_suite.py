"""``--jobs`` fan-out: byte-identical reports, fault isolation, traces.

The process-pool path's contract (``docs/performance.md`` §4): any
``jobs`` width produces byte-identical reports and archives to a serial
sweep, the PR-1 degraded-row machinery still works per worker, and the
workers' metrics/trace registries merge back deterministically.
"""

import json
import os

import pytest

from repro.evalharness import (
    generate_report,
    run_suite,
    runs_to_json,
    trace_file_for,
)
from repro.obs import Metrics
from repro.resilience import FaultSpec, WatchdogConfig

KERNELS = ["nn/euclid", "bfs/Kernel", "kmeans/invert_mapping"]


# ----------------------------------------------------------------------
# Naming rule for per-kernel trace files
# ----------------------------------------------------------------------
def test_trace_file_for_inserts_kernel_before_extension():
    assert trace_file_for("sweep.json", "nn/nearest") == "sweep.nn_nearest.json"
    assert trace_file_for("out/t.json", "bfs/Kernel") == "out/t.bfs_Kernel.json"


def test_trace_file_for_defaults_extension():
    assert trace_file_for("sweep", "nn/euclid") == "sweep.nn_euclid.json"


# ----------------------------------------------------------------------
# Determinism: jobs=N reproduces the serial sweep byte for byte
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_runs():
    return run_suite(KERNELS, scale="tiny")


def test_jobs_report_byte_identical_to_serial(serial_runs):
    parallel = run_suite(KERNELS, scale="tiny", jobs=2)
    assert list(parallel) == list(serial_runs)  # input order, not completion
    assert generate_report(parallel, scale="tiny") == \
        generate_report(serial_runs, scale="tiny")
    assert runs_to_json(parallel) == runs_to_json(serial_runs)


def test_jobs_merges_worker_metrics(serial_runs):
    serial_metrics, parallel_metrics = Metrics(), Metrics()
    run_suite(KERNELS, scale="tiny", metrics=serial_metrics)
    run_suite(KERNELS, scale="tiny", jobs=2, metrics=parallel_metrics)
    # Counter aggregates are order-independent, so the merged registry
    # matches the serial one exactly (gauges keep the last kernel's
    # value, which is the same kernel in both orders).  The one honest
    # difference: the parent's in-memory cache holds no entries under
    # --jobs (the workers own theirs), so its size gauge reads 0.
    serial_dict = serial_metrics.as_dict()
    parallel_dict = parallel_metrics.as_dict()
    assert serial_dict["gauges"].pop("compile/cache.entries") > 0
    assert parallel_dict["gauges"].pop("compile/cache.entries") == 0
    assert parallel_dict == serial_dict


def test_jobs_rejects_nothing_but_reports_cache_counters(serial_runs):
    metrics = Metrics()
    run_suite(KERNELS, scale="tiny", jobs=2, metrics=metrics)
    # Each kernel compiled exactly once *somewhere*: the folded
    # compile-scope counters show the worker misses.
    assert metrics.value("compile/cache.misses") > 0


# ----------------------------------------------------------------------
# Fault isolation under --jobs
# ----------------------------------------------------------------------
def test_seeded_faults_same_degraded_rows_serial_vs_jobs():
    inject = {"nn/euclid": FaultSpec("stuck_at", seed=7)}
    wd = WatchdogConfig(max_cycles=5e6)
    serial = run_suite(KERNELS, scale="tiny", inject=inject, watchdog=wd)
    parallel = run_suite(KERNELS, scale="tiny", inject=inject, watchdog=wd,
                         jobs=2)
    assert serial.degraded == parallel.degraded == ["nn/euclid"]
    assert sorted(serial) == sorted(parallel)  # healthy rows survive
    # The deterministic fault campaign produces the same structured
    # failure log in a worker process as in the serial loop.
    assert json.dumps(parallel.failure_logs(), sort_keys=True, default=str) \
        == json.dumps(serial.failure_logs(), sort_keys=True, default=str)
    assert generate_report(parallel, scale="tiny") == \
        generate_report(serial, scale="tiny")


# ----------------------------------------------------------------------
# Per-kernel trace files (serial and parallel)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_trace_path_writes_one_file_per_kernel(tmp_path, jobs):
    base = str(tmp_path / "sweep.json")
    runs = run_suite(KERNELS[:2], scale="tiny", jobs=jobs, trace_path=base)
    assert len(runs) == 2
    for name in KERNELS[:2]:
        path = trace_file_for(base, name)
        assert os.path.exists(path), f"missing per-kernel trace {path}"
        doc = json.load(open(path))
        assert doc["traceEvents"], f"empty timeline in {path}"
    # No kernel overwrote another: the files differ.
    a, b = (open(trace_file_for(base, n)).read() for n in KERNELS[:2])
    assert a != b
