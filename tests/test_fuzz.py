"""Tests for the differential fuzzing subsystem (:mod:`repro.fuzz`).

Covers the four moving parts independently of a live campaign:

* **generator** — arbitrary seeds produce valid, bounded, interpretable
  kernels, deterministically;
* **oracle** — classification of clean runs, engineered mismatches,
  missing stores, and benign unmappables;
* **reducer** — an engineered miscompile shrinks to a minimal
  reproducer (the ISSUE's <=3 blocks / <=10 instructions bar),
  deterministically;
* **campaign** — summaries are byte-identical across ``--jobs``
  settings and land the fuzz counters in the metrics registry.
"""

import dataclasses
import json
from unittest import mock

import numpy as np
import pytest

from repro.fuzz import (
    CampaignConfig,
    GenConfig,
    compare_images,
    generate_case,
    reduce_case,
    run_campaign,
    run_case,
)
from repro.interp import interpret
from repro.ir import EVAL, Op
from repro.ir.text import kernel_to_text, kernels_equivalent
from repro.ir.validate import validate_kernel
from repro.obs import Metrics

# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(20))
def test_generated_kernels_are_valid_and_interpretable(seed):
    case = generate_case(seed)
    validate_kernel(case.kernel)  # raises on any problem
    mem = case.build_memory()
    result = interpret(case.kernel, mem, case.params, case.n_threads,
                       max_block_visits=100_000)
    assert result.total_stores >= 1  # the checksum epilogue always stores


def test_generation_is_deterministic():
    a, b = generate_case(1234), generate_case(1234)
    assert kernel_to_text(a.kernel) == kernel_to_text(b.kernel)
    assert a.params == b.params
    assert a.input_values == b.input_values
    assert a.n_threads == b.n_threads


def test_different_seeds_differ():
    texts = {kernel_to_text(generate_case(s).kernel) for s in range(10)}
    assert len(texts) == 10


def test_gen_config_knobs_bound_the_output():
    cfg = GenConfig(max_threads=2, max_depth=1, max_stmts=2, max_exprs=1)
    for seed in range(10):
        case = generate_case(seed, cfg)
        assert case.n_threads <= 2
        validate_kernel(case.kernel)


def test_stores_stay_inside_the_output_region():
    """Race-freedom invariant: no generated kernel ever writes below
    the output base (the input region is read-only)."""
    for seed in range(10):
        case = generate_case(seed)
        mem = case.build_memory()
        before_input = mem.data[:case.params["out"]].copy()
        interpret(case.kernel, mem, case.params, case.n_threads,
                  max_block_visits=100_000)
        assert np.array_equal(mem.data[:case.params["out"]], before_input)


# ----------------------------------------------------------------------
# Image comparison
# ----------------------------------------------------------------------
def test_compare_images_equal_and_nan_aware():
    a = np.array([1.0, float("nan"), 3.0])
    assert compare_images(a, a.copy()).equal
    b = np.array([1.0, float("nan"), 4.0])
    diff = compare_images(a, b)
    assert not diff.equal
    assert diff.words_diverged == 1 and diff.first_addr == 2


def test_compare_images_classifies_missing_stores():
    initial = np.zeros(4)
    golden = np.array([0.0, 5.0, 0.0, 7.0])
    got = np.array([0.0, 5.0, 0.0, 0.0])  # word 3 never written
    diff = compare_images(golden, got, initial)
    assert diff.words_diverged == 1
    assert diff.missing_store_words == 1


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
def test_oracle_clean_case_reports_ok():
    report = run_case(generate_case(1))
    assert not report.divergent
    statuses = {o.engine: o.status for o in report.outcomes}
    assert set(statuses) <= {"fermi", "vgiw", "sgmf", "optimizer"}
    assert all(s in ("ok", "unmappable") for s in statuses.values())


def _sabotaged_fold_constants():
    """A patched constant folder that flips every XOR to OR — an
    engineered compiler miscompile the oracle must catch.  The golden
    model interprets the *raw* kernel, so it is unaffected."""
    from repro.compiler import optimize as opt_mod

    real_fold = opt_mod.fold_constants

    def buggy_fold(kernel):
        kernel = real_fold(kernel)
        for block in kernel.blocks.values():
            block.instrs = [
                dataclasses.replace(i, op=Op.OR) if i.op is Op.XOR else i
                for i in block.instrs
            ]
        return kernel

    return mock.patch.object(opt_mod, "fold_constants", buggy_fold)


def test_oracle_detects_engineered_miscompile():
    """An XOR->OR miscompile in the optimisation pipeline must show up
    as an ``optimizer`` mismatch (compiler bug, not machine bug) *and*
    as a mismatch on the engines that executed the mangled kernel."""
    with _sabotaged_fold_constants():
        report = run_case(generate_case(0), engines=("fermi",))
    assert report.divergent
    statuses = {o.engine: o.status for o in report.outcomes}
    assert statuses.get("optimizer") == "mismatch"
    assert statuses.get("fermi") == "mismatch"


def test_oracle_report_is_json_serialisable():
    report = run_case(generate_case(2))
    text = json.dumps(report.to_dict(), sort_keys=True)
    assert json.loads(text)["kernel"] == report.kernel_name


# ----------------------------------------------------------------------
# Reducer
# ----------------------------------------------------------------------
def _sizes(kernel):
    return (len(kernel.blocks),
            sum(len(b.instrs) for b in kernel.blocks.values()))


def _make_divergence_predicate():
    """An engineered miscompile: XOR is off by one in the 'buggy
    machine'.  The predicate interprets each candidate twice — once
    clean, once patched — and reports whether final memory diverges."""

    def buggy_xor(a, b):
        return (int(a) ^ int(b)) + 1

    def diverges(case):
        clean = case.build_memory()
        interpret(case.kernel, clean, case.params, case.n_threads,
                  max_block_visits=100_000)
        buggy = case.build_memory()
        with mock.patch.dict(EVAL, {Op.XOR: buggy_xor}):
            interpret(case.kernel, buggy, case.params, case.n_threads,
                      max_block_visits=100_000)
        return not compare_images(clean.data, buggy.data).equal

    return diverges


def test_reducer_shrinks_engineered_bug_to_minimal_reproducer():
    """The ISSUE's acceptance bar: an engineered injected-bug kernel
    reduces to <=3 blocks and <=10 instructions."""
    diverges = _make_divergence_predicate()
    case = generate_case(1)
    assert diverges(case)
    blocks0, instrs0 = _sizes(case.kernel)

    reduced = reduce_case(case, diverges)
    blocks1, instrs1 = _sizes(reduced.kernel)

    assert diverges(reduced)  # still a reproducer
    validate_kernel(reduced.kernel)  # and still a valid kernel
    assert blocks1 <= 3, f"{blocks0} -> {blocks1} blocks"
    assert instrs1 <= 10, f"{instrs0} -> {instrs1} instructions"
    assert reduced.n_threads <= case.n_threads


def test_reducer_is_deterministic():
    diverges = _make_divergence_predicate()
    r1 = reduce_case(generate_case(5), diverges)
    r2 = reduce_case(generate_case(5), diverges)
    assert kernels_equivalent(r1.kernel, r2.kernel)
    assert r1.n_threads == r2.n_threads


def test_reducer_returns_input_when_not_interesting():
    case = generate_case(7)
    reduced = reduce_case(case, lambda c: False)
    assert kernels_equivalent(case.kernel, reduced.kernel)


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
def test_campaign_summary_is_byte_identical_across_jobs():
    cfgs = [CampaignConfig(seed=3, count=8, jobs=jobs) for jobs in (1, 2)]
    summaries = [
        json.dumps(run_campaign(cfg).summary(), sort_keys=True)
        for cfg in cfgs
    ]
    assert summaries[0] == summaries[1]


def test_campaign_records_metrics():
    metrics = Metrics()
    result = run_campaign(CampaignConfig(seed=0, count=4), metrics=metrics)
    assert len(result.reports) == 4
    assert metrics.value("fuzz/cases.processed") == 4
    assert metrics.value("fuzz/cases.divergent") == len(
        result.divergent_reports
    )
    assert metrics.value("fuzz/outcome.ok", 0) >= 1


def test_campaign_time_budget_skips_remaining(tmp_path):
    cfg = CampaignConfig(seed=0, count=50, time_budget=0.0)
    result = run_campaign(cfg)
    assert result.skipped > 0
    assert len(result.reports) + result.skipped == 50


def test_campaign_writes_reduced_reproducer_for_divergence(tmp_path):
    """End-to-end: a campaign whose compiler has an engineered bug must
    catch it, reduce it, and write a replayable corpus entry that still
    reproduces under the bug."""
    from repro.fuzz import load_corpus_case

    corpus = tmp_path / "corpus"
    with _sabotaged_fold_constants():
        cfg = CampaignConfig(
            seed=0, count=5, engines=("fermi",),
            corpus_dir=str(corpus), reduce=True,
        )
        result = run_campaign(cfg)
        assert result.divergent_reports, "sabotage went undetected"
        assert result.reproducers
        for path in result.reproducers.values():
            replay = load_corpus_case(path)
            validate_kernel(replay.kernel)
            # the reduced reproducer still fails under the bug
            report = run_case(replay, engines=("fermi",))
            assert report.divergent
            # ... and is genuinely minimal
            blocks, instrs = _sizes(replay.kernel)
            assert blocks <= 3 and instrs <= 12

    # with the bug fixed (patch exited) the reproducers replay clean
    for path in result.reproducers.values():
        assert not run_case(load_corpus_case(path),
                            engines=("fermi",)).divergent
