"""Basic blocks of the virtual kernel ISA."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Set

from repro.ir.instr import Instr, Op, Terminator
from repro.ir.types import Reg


@dataclass
class BasicBlock:
    """A straight-line instruction sequence ending in one terminator.

    On a VGIW machine each basic block becomes one *graph instruction
    word*: its dataflow graph is what the BBS configures onto the
    MT-CGRF core (paper section 2).
    """

    name: str
    instrs: List[Instr] = field(default_factory=list)
    terminator: Terminator = None

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def successors(self) -> tuple:
        """Names of successor blocks (empty for exit blocks)."""
        return self.terminator.targets()

    def defs(self) -> Set[str]:
        """Register names written in this block."""
        return {i.dst for i in self.instrs if i.dst is not None}

    def uses_before_def(self) -> Set[str]:
        """Register names read before being written in this block.

        This is the ``use`` set of classic liveness analysis.  The
        terminator's condition operand counts as a use at the end of the
        block.
        """
        defined: Set[str] = set()
        used: Set[str] = set()
        for instr in self.instrs:
            for src in instr.srcs:
                if isinstance(src, Reg) and src.name not in defined:
                    used.add(src.name)
            if instr.dst is not None:
                defined.add(instr.dst)
        cond = self.terminator.cond if self.terminator else None
        if isinstance(cond, Reg) and cond.name not in defined:
            used.add(cond.name)
        return used

    def memory_ops(self) -> Iterator[Instr]:
        """Iterate over the block's LOAD/STORE instructions."""
        return (i for i in self.instrs if i.op in (Op.LOAD, Op.STORE))

    def __repr__(self) -> str:
        body = "\n".join(f"  {i!r}" for i in self.instrs)
        term = f"  {self.terminator!r}" if self.terminator else "  <unterminated>"
        return f"{self.name}:\n{body}\n{term}" if body else f"{self.name}:\n{term}"
