"""VGIW compiler: analyses, dataflow-graph extraction, place & route."""

from repro.compiler.cache import (
    CACHE_VERSION,
    CompileCache,
    cached_compile_kernel,
    cached_map_kernel,
    cached_optimize_kernel,
    kernel_fingerprint,
)
from repro.compiler.cfganalysis import (
    Loop,
    immediate_dominators,
    immediate_post_dominators,
    loop_depth,
    natural_loops,
    reverse_post_order,
)
from repro.compiler.dfg import (
    BlockDFG,
    DFGBuildError,
    DFGNode,
    ImmSrc,
    NodeKind,
    NodeSrc,
    ParamSrc,
    Src,
    TidSrc,
    build_block_dfg,
    build_kernel_dfgs,
)
from repro.compiler.dot import cfg_to_dot, dfg_to_dot, fabric_to_dot
from repro.compiler.liveness import LivenessResult, analyze_liveness
from repro.compiler.livevalues import LiveValueMap, allocate_live_values
from repro.compiler.optimize import (
    copy_propagate,
    eliminate_dead_code,
    fold_constants,
    fuse_fma,
    local_cse,
    optimize_kernel,
    propagate_params,
)
from repro.compiler.partition import PartitionError, split_block
from repro.compiler.unroll import unroll_loops
from repro.compiler.verifydfg import DFGVerificationError, verify_compiled, verify_dfg
from repro.compiler.pipeline import CompiledBlock, CompiledKernel, compile_kernel
from repro.compiler.placement import (
    CapacityError,
    Fabric,
    PlacedBlock,
    PlacedReplica,
    Unit,
    max_replicas,
    place_block,
)
from repro.compiler.schedule import BlockSchedule, schedule_blocks

__all__ = [
    "BlockDFG",
    "BlockSchedule",
    "CACHE_VERSION",
    "CapacityError",
    "CompileCache",
    "cached_compile_kernel",
    "cached_map_kernel",
    "cached_optimize_kernel",
    "kernel_fingerprint",
    "CompiledBlock",
    "CompiledKernel",
    "DFGBuildError",
    "DFGNode",
    "Fabric",
    "ImmSrc",
    "LiveValueMap",
    "LivenessResult",
    "Loop",
    "NodeKind",
    "NodeSrc",
    "ParamSrc",
    "PartitionError",
    "PlacedBlock",
    "PlacedReplica",
    "Src",
    "TidSrc",
    "Unit",
    "allocate_live_values",
    "analyze_liveness",
    "build_block_dfg",
    "build_kernel_dfgs",
    "cfg_to_dot",
    "compile_kernel",
    "copy_propagate",
    "dfg_to_dot",
    "eliminate_dead_code",
    "fabric_to_dot",
    "fold_constants",
    "fuse_fma",
    "local_cse",
    "optimize_kernel",
    "propagate_params",
    "unroll_loops",
    "DFGVerificationError",
    "verify_compiled",
    "verify_dfg",
    "immediate_dominators",
    "immediate_post_dominators",
    "loop_depth",
    "max_replicas",
    "natural_loops",
    "place_block",
    "reverse_post_order",
    "schedule_blocks",
    "split_block",
]
