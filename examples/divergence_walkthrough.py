"""The paper's Figure 1/2 walkthrough: control flow coalescing, step by step.

Reproduces the running example of the paper on eight threads whose
control flow diverges exactly as in Figure 1a:

* threads 1,3,8 take the outer then-arm            (paper: BB2),
* threads 2,7   take the inner then-arm            (paper: BB4),
* threads 4-6   take the inner else-arm            (paper: BB5),
* all converge at the exit block                   (paper: BB6).

The script drives the VGIW machine model block by block and prints the
control vector table after every scheduled block — the machine states of
the paper's Figure 2 — then runs the same kernel on the Fermi baseline
to show the masked-lane waste of Figure 1b.

Run:  python examples/divergence_walkthrough.py
"""

import numpy as np

from repro.arch import VGIWConfig
from repro.compiler import compile_kernel
from repro.kernels import fig1_kernel, make_fig1_workload
from repro.memory import MemoryImage
from repro.memory.hierarchy import LiveValueCache, MemorySystem
from repro.simt import FermiSM
from repro.vgiw import ControlVectorTable, VGIWCore, iter_batch_tids, render_timeline
from repro.vgiw.mtcgrf import MTCGRFExecutor

N = 8
#: data values steering each thread onto the paper's path
#: (thread i here = paper thread i+1; a=10, b=20)
DATA = [5.0, 15.0, 7.0, 25.0, 30.0, 36.0, 12.0, 9.0]


def cvt_picture(cvt, schedule):
    """Render the CVT as block -> sorted thread list (1-indexed, as in
    the paper's Figure 2)."""
    parts = []
    for block_id in range(cvt.n_blocks):
        pending = [
            t + 1
            for base, bm in [(0, cvt._vectors[block_id])]
            for t in iter_batch_tids(0, bm)
        ]
        if pending:
            parts.append(f"{schedule.name_of(block_id)}: {pending}")
    return " | ".join(parts) or "(all done)"


def main():
    kernel = fig1_kernel()
    config = VGIWConfig()
    compiled = compile_kernel(kernel, config.fabric)
    schedule = compiled.schedule

    mem = MemoryImage(256)
    data = mem.alloc_array("data", DATA)
    out = mem.alloc("out", N)
    params = {"a": 10.0, "b": 20.0, "data": data, "out": out}

    memsys = MemorySystem(config.memory, l1_write_back=True)
    lvc = LiveValueCache(
        config.lvc_size_bytes, config.lvc_line_bytes, config.lvc_ways,
        config.lvc_banks, config.lvc_hit_latency, memsys.l2,
    )
    executor = MTCGRFExecutor(config, memsys, lvc, mem, params)

    cvt = ControlVectorTable(compiled.n_blocks, N)
    cvt.activate_all(0)

    print("kernel CFG (block -> ID):")
    for name in schedule.order:
        print(f"  {schedule.id_of(name):2d}  {name}")
    print()
    print("initial state (all threads coalesced into the entry block):")
    print("  " + cvt_picture(cvt, schedule))
    print()

    time = 0.0
    step = 0
    while (block_id := cvt.first_nonempty()) is not None:
        step += 1
        cb = compiled.block_by_id(block_id)
        tids = [
            t for base, bm in cvt.pop_batches(block_id)
            for t in iter_batch_tids(base, bm)
        ]
        time += config.fabric.config_cycles  # reconfigure the grid
        outcomes, time = executor.execute_block(cb, tids, time)
        for oc in outcomes:
            if oc.next_block is not None:
                cvt.or_batch(schedule.id_of(oc.next_block), 0, 1 << oc.tid)
        cvt.check_invariant()
        executed = [t + 1 for t in tids]
        print(f"step {step}: executed {cb.name:10s} for threads {executed}")
        print("  CVT now: " + cvt_picture(cvt, schedule))

    print()
    print(f"VGIW finished in {time:.0f} cycles "
          f"({step} block executions, {compiled.n_blocks} static blocks)")
    expected = np.where(
        np.array(DATA) < 10, 2 * np.array(DATA),
        np.where(np.array(DATA) < 20, np.array(DATA) + 10,
                 np.sqrt(np.array(DATA))),
    )
    np.testing.assert_allclose(mem.read_region("out"), expected)
    print("results verified against the closed-form model")
    print()

    # The same launch on the Fermi baseline (Figure 1b's masked lanes).
    mem2 = MemoryImage(256)
    mem2.alloc_array("data", DATA)
    mem2.alloc("out", N)
    fermi = FermiSM().run(kernel, mem2, params, N)
    eff = fermi.sm.simd_efficiency
    print(f"Fermi executes the same work with SIMD efficiency {eff:.0%} "
          f"({fermi.sm.wasted_lane_slots} lane slots masked off, "
          f"{fermi.sm.divergences} divergences)")
    print("VGIW wastes no lanes: each block ran exactly its thread vector.")
    print()

    # The same launch at a realistic thread count, as a timeline (the
    # picture the paper's Figure 1d sketches).
    kernel2, mem3, params3 = make_fig1_workload(n_threads=512)
    big = VGIWCore().run(kernel2, mem3, params3, 512, profile=True)
    print(render_timeline(big))


if __name__ == "__main__":
    main()
