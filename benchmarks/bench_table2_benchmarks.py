"""Paper Table 2: the benchmark suite.

Regenerates the application/kernel/block-count table from the registry
and the compiled kernels, and checks the suite covers all 13
applications and 21 kernels of the paper.
"""

from repro.evalharness.experiments import table2_benchmarks
from repro.kernels.registry import TABLE2


def bench_table2(benchmark, suite_runs):
    table = benchmark(table2_benchmarks, suite_runs)
    print()
    print(table.render())

    apps = {e.app for e in TABLE2}
    assert apps == {
        "BFS", "KMEANS", "CFD", "LUD", "GE", "HOTSPOT", "LAVAMD",
        "NN", "PF", "BPNN", "NW", "SM",
    }
    assert len(TABLE2) == 21
    # Our structured builder should land in the same ballpark as the
    # paper's block counts.  The loosest case is BPNN layerforward: the
    # barrier-free privatisation flattens Rodinia's 20-block
    # shared-memory reduction to 6 blocks (documented in the kernel).
    for row in table.rows:
        paper, ours = row[3], row[4]
        assert ours is not None
        assert ours <= 2 * paper + 4
        assert paper <= 4 * ours
