"""Static kernel statistics.

``kernel_statistics`` summarises a kernel the way architects skim one:
instruction mix by unit class, control-flow shape (blocks, branches,
loops, nesting), and block-size distribution.  Used by reports, handy
when writing new benchmark kernels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ir.instr import Op, TermKind, UnitClass, unit_class
from repro.ir.kernel import Kernel


@dataclass
class KernelStatistics:
    """Static summary of one kernel."""

    name: str
    n_blocks: int
    n_instructions: int
    n_branches: int          # conditional terminators
    n_loops: int
    max_loop_depth: int
    by_unit_class: Dict[str, int] = field(default_factory=dict)
    by_op: Counter = field(default_factory=Counter)
    block_sizes: List[int] = field(default_factory=list)

    @property
    def memory_fraction(self) -> float:
        mem = self.by_unit_class.get("memory", 0)
        return mem / self.n_instructions if self.n_instructions else 0.0

    @property
    def special_fraction(self) -> float:
        scu = self.by_unit_class.get("special", 0)
        return scu / self.n_instructions if self.n_instructions else 0.0

    @property
    def mean_block_size(self) -> float:
        return (
            sum(self.block_sizes) / len(self.block_sizes)
            if self.block_sizes else 0.0
        )

    def render(self) -> str:
        mix = ", ".join(
            f"{k}: {v}" for k, v in sorted(self.by_unit_class.items())
        )
        top_ops = ", ".join(
            f"{op.value} x{n}" for op, n in self.by_op.most_common(5)
        )
        return "\n".join([
            f"kernel {self.name}: {self.n_instructions} instructions in "
            f"{self.n_blocks} blocks",
            f"  branches: {self.n_branches}, loops: {self.n_loops} "
            f"(max depth {self.max_loop_depth})",
            f"  unit mix: {mix}",
            f"  top ops: {top_ops}",
            f"  block sizes: min {min(self.block_sizes or [0])}, "
            f"mean {self.mean_block_size:.1f}, "
            f"max {max(self.block_sizes or [0])}",
        ])


def kernel_statistics(kernel: Kernel) -> KernelStatistics:
    """Compute the static summary of ``kernel``."""
    from repro.compiler.cfganalysis import loop_depth, natural_loops

    by_class: Counter = Counter()
    by_op: Counter = Counter()
    sizes: List[int] = []
    branches = 0
    for block in kernel.blocks.values():
        sizes.append(len(block.instrs))
        if block.terminator.kind is TermKind.BR:
            branches += 1
        for instr in block.instrs:
            by_op[instr.op] += 1
            by_class[unit_class(instr.op).value] += 1

    loops = natural_loops(kernel)
    depth = loop_depth(kernel)
    return KernelStatistics(
        name=kernel.name,
        n_blocks=kernel.num_blocks,
        n_instructions=kernel.instruction_count(),
        n_branches=branches,
        n_loops=len(loops),
        max_loop_depth=max(depth.values()) if depth else 0,
        by_unit_class=dict(by_class),
        by_op=by_op,
        block_sizes=sizes,
    )
