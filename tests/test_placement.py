"""Tests for the fabric model, place & route, replication, scheduling,
and oversized-block partitioning."""

import pytest

from repro.arch import FabricSpec, UnitKind
from repro.compiler import (
    CapacityError,
    Fabric,
    allocate_live_values,
    build_kernel_dfgs,
    compile_kernel,
    max_replicas,
    place_block,
    schedule_blocks,
    split_block,
)
from repro.interp import interpret
from repro.ir import KernelBuilder
from repro.kernels import fig1_kernel, loop_sum_kernel, saxpy_kernel
from repro.memory import MemoryImage


def test_fabric_composition_matches_spec():
    spec = FabricSpec()
    fabric = Fabric(spec)
    assert len(fabric.units) == 108
    for kind, count in spec.counts.items():
        assert len(fabric.by_kind[kind]) == count


def test_memory_units_on_perimeter():
    fabric = Fabric(FabricSpec())
    w, h = fabric.spec.width, fabric.spec.height
    for kind in (UnitKind.LDST, UnitKind.LVU):
        for uid in fabric.by_kind[kind]:
            u = fabric.units[uid]
            assert u.x in (0, w - 1) or u.y in (0, h - 1), (
                f"{kind} unit {uid} at ({u.x},{u.y}) is not on the perimeter"
            )


def test_hop_distance_metric():
    fabric = Fabric(FabricSpec())
    a = fabric.units[0]
    # Distance to itself is one hop (output loops back through a switch).
    assert fabric.hops(a.uid, a.uid) == 1
    # Folded-hypercube shortcut: Manhattan distance 2 is still one hop.
    for u in fabric.units:
        d = abs(u.x - a.x) + abs(u.y - a.y)
        if d == 2:
            assert fabric.hops(a.uid, u.uid) == 1
        if d == 3:
            assert fabric.hops(a.uid, u.uid) == 2


def test_placement_is_legal():
    k = fig1_kernel()
    ck = compile_kernel(k)
    for cb in ck.blocks.values():
        used = set()
        for replica in cb.placement.replicas:
            for nid, uid in replica.unit_of.items():
                node = cb.dfg.node(nid)
                unit = ck.fabric.units[uid]
                assert unit.kind is node.unit_kind
                assert uid not in used, "two nodes share a physical unit"
                used.add(uid)


def test_edge_hops_positive():
    ck = compile_kernel(saxpy_kernel())
    for cb in ck.blocks.values():
        for replica in cb.placement.replicas:
            assert all(h >= 1 for h in replica.edge_hops.values())
            # Every data/control edge has a routed latency.
            n_edges = sum(len(n.input_nodes()) for n in cb.dfg.nodes)
            assert len(replica.edge_hops) <= n_edges


def test_replication_fills_fabric():
    ck = compile_kernel(saxpy_kernel())
    # saxpy's body block is small; several replicas must fit.
    assert ck.blocks["then.1"].n_replicas >= 2
    # Replicas are capped at 8 (CVU pairs).
    assert all(cb.n_replicas <= 8 for cb in ck.blocks.values())


def test_replication_can_be_disabled():
    ck = compile_kernel(saxpy_kernel(), replicate=False)
    assert all(cb.n_replicas == 1 for cb in ck.blocks.values())


def test_schedule_entry_is_zero_and_back_edges_decrease():
    k = loop_sum_kernel()
    sched = schedule_blocks(k)
    assert sched.id_of(k.entry) == 0
    # Loops manifest as successor IDs smaller than the block's own ID
    # (paper section 3.1).
    back_edges = [
        (name, succ)
        for name, block in k.blocks.items()
        for succ in block.successors()
        if sched.id_of(succ) <= sched.id_of(name)
    ]
    assert len(back_edges) == 1


def test_max_replicas_zero_for_oversized():
    kb = KernelBuilder("big", params=["out"])
    acc = kb.tid() * 1
    for i in range(80):  # more compute nodes than the 32 compute units
        acc = acc + i
    kb.store(kb.param("out"), kb.i2f(acc))
    k = kb.build()
    lv = allocate_live_values(k)
    dfgs = build_kernel_dfgs(k, lv)
    assert max_replicas(dfgs["entry"], FabricSpec(), 8) == 0


def test_compile_partitions_oversized_block():
    kb = KernelBuilder("big", params=["out"])
    acc = kb.tid() * 1
    for i in range(80):
        acc = acc + i
    kb.store(kb.param("out") + kb.tid(), kb.i2f(acc))
    k = kb.build()
    ck = compile_kernel(k)
    # The block was split into a chain; every piece now fits.
    assert ck.n_blocks > 1
    for cb in ck.blocks.values():
        assert cb.n_replicas >= 1

    # Semantics preserved: interpret the partitioned kernel.
    base = sum(range(80))
    mem = MemoryImage(64)
    out = mem.alloc("out", 4)
    interpret(ck.kernel, mem, {"out": out}, 4)
    assert list(mem.read_region("out")) == [float(base + t) for t in range(4)]


def test_split_block_preserves_semantics():
    k = saxpy_kernel()
    k2 = split_block(k, "then.1")
    assert len(k2.blocks) == len(k.blocks) + 1
    import numpy as np

    for kernel in (k, k2):
        mem = MemoryImage(128)
        bx = mem.alloc_array("x", np.arange(8.0))
        by = mem.alloc_array("y", np.ones(8))
        bo = mem.alloc("out", 8)
        interpret(kernel, mem, {"a": 2.0, "x": bx, "y": by, "out": bo, "n": 8}, 8)
        np.testing.assert_allclose(mem.read_region("out"), 2.0 * np.arange(8.0) + 1)


def test_place_block_raises_when_no_capacity():
    k = saxpy_kernel()
    lv = allocate_live_values(k)
    dfgs = build_kernel_dfgs(k, lv)
    fabric = Fabric(FabricSpec())
    with pytest.raises(CapacityError):
        place_block(dfgs["entry"], fabric, 0)


def test_small_custom_fabric():
    spec = FabricSpec(
        width=4,
        height=4,
        counts={
            UnitKind.COMPUTE: 4,
            UnitKind.SPECIAL: 1,
            UnitKind.LDST: 4,
            UnitKind.LVU: 3,
            UnitKind.SJU: 2,
            UnitKind.CVU: 2,
        },
    )
    ck = compile_kernel(saxpy_kernel(), spec=spec)
    assert all(cb.n_replicas == 1 for cb in ck.blocks.values())
