"""Architecture configuration dataclasses (paper Table 1).

Three machine configurations are modelled:

* :class:`VGIWConfig` — the proposed hybrid dataflow/von Neumann core.
* :class:`FermiConfig` — the NVIDIA Fermi-class SIMT streaming
  multiprocessor used as the von Neumann baseline.
* :class:`SGMFConfig` — the SGMF dataflow GPGPU baseline (ISCA 2014),
  which shares the MT-CGRF fabric description with VGIW.

All three share one :class:`MemoryConfig` (the paper keeps the uncore
identical; the only difference is the L1 write policy, which is a field
of the core configs).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict


class UnitKind(enum.Enum):
    """Physical functional-unit kinds of the MT-CGRF grid (paper §3.5)."""

    COMPUTE = "compute"  # merged FPU-ALU
    SPECIAL = "special"  # special compute unit (non-pipelined op pool)
    LDST = "ldst"        # load/store unit (grid perimeter)
    LVU = "lvu"          # live value load/store unit (grid perimeter)
    SJU = "sju"          # split/join unit
    CVU = "cvu"          # control vector unit (initiator/terminator)


@dataclass(frozen=True)
class FabricSpec:
    """Geometry and composition of the MT-CGRF grid.

    The default is the paper's 108-unit configuration: 32 FPU-ALU,
    12 SCU, 16 LDST, 16 LVU, 16 SJU, 16 CVU on a 12 x 9 grid, with the
    LDSTUs and LVUs on the grid perimeter (paper Table 1 and §3.5).
    """

    width: int = 12
    height: int = 9
    counts: Dict[UnitKind, int] = field(
        default_factory=lambda: {
            UnitKind.COMPUTE: 32,
            UnitKind.SPECIAL: 12,
            UnitKind.LDST: 16,
            UnitKind.LVU: 16,
            UnitKind.SJU: 16,
            UnitKind.CVU: 16,
        }
    )

    @property
    def total_units(self) -> int:
        return sum(self.counts.values())

    def __post_init__(self) -> None:
        if self.total_units != self.width * self.height:
            raise ValueError(
                f"unit counts sum to {self.total_units}, grid holds "
                f"{self.width * self.height}"
            )

    @property
    def config_cycles(self) -> int:
        """Reconfiguration cost in cycles.

        The configuration tokens are fed from the grid's left perimeter
        and propagate along rows; the process takes ~sqrt(#units) cycles
        and is performed twice (paper §3.2), plus a reset/drain constant
        chosen so the paper's 108-unit prototype costs 34 cycles.
        """
        return 2 * math.ceil(math.sqrt(self.total_units)) + 12


#: Operation latencies (cycles) for the dataflow fabric's units.
#: Pipelined units accept a new operation every cycle (II = 1);
#: SCU operations are non-pipelined but the SCU pools several instances.
DEFAULT_OP_LATENCY: Dict[str, int] = {
    "int_alu": 1,
    "int_mul": 3,
    "fp_alu": 3,
    "fp_mul": 3,
    "fma": 4,
    "compare": 1,
    "select": 1,
    "div": 16,
    "sqrt": 12,
    "transcendental": 18,
    "split": 1,
    "join": 1,
}


@dataclass(frozen=True)
class MemoryConfig:
    """Shared memory hierarchy (paper Table 1 / §3.6)."""

    # L1 (per core)
    l1_size_bytes: int = 64 * 1024
    l1_banks: int = 32
    l1_line_bytes: int = 128
    l1_ways: int = 4
    l1_hit_latency: int = 8
    # L2 (shared, runs at half the core clock; latency given in core cycles)
    l2_size_bytes: int = 768 * 1024
    l2_banks: int = 6
    l2_line_bytes: int = 128
    l2_ways: int = 16
    # Total L2 round trip is 2x this (request + response legs).
    l2_hit_latency: int = 20
    # GDDR5 DRAM
    dram_channels: int = 6
    dram_banks_per_channel: int = 16
    dram_row_bytes: int = 2048
    dram_row_hit_latency: int = 100
    dram_row_miss_latency: int = 200
    dram_burst_cycles: int = 4  # channel occupancy per 128B transfer


@dataclass(frozen=True)
class VGIWConfig:
    """The VGIW core (paper Table 1)."""

    fabric: FabricSpec = field(default_factory=FabricSpec)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    # Live value cache: 64KB (4x smaller than Fermi's 128KB register file
    # per the paper's comparison), banked like an L1, backed by L2.
    lvc_size_bytes: int = 64 * 1024
    lvc_banks: int = 16
    lvc_line_bytes: int = 64
    lvc_ways: int = 4
    lvc_hit_latency: int = 4
    # Control vector table: 8 banks of 64-bit words (paper §3.3).
    cvt_bits: int = 64 * 1024 * 8  # 64KB of thread bits
    cvt_banks: int = 8
    cvt_word_bits: int = 64
    # Token buffers: entries per functional unit = in-flight virtual
    # channels (threads) a unit can hold.  The MT-CGRF relies on deep
    # multithreading exactly like a GPGPU relies on resident warps
    # (48 warps x 32 threads = 1536 on Fermi); 256 channels x 8 replicas
    # gives the fabric a comparable in-flight population.
    token_buffer_depth: int = 512
    # LDST reservation buffer: outstanding memory ops per LDST unit
    # (the structure that lets unblocked threads overtake stalled ones,
    # paper section 3.5).  Sized so one unit can keep ~a DRAM round trip
    # of scalar requests in flight.
    ldst_reservation_entries: int = 256
    # SCU: instances of each non-pipelined circuit per SCU, sized so a
    # new non-pipelined operation can begin every cycle (paper section 3.5:
    # "The units thus enable a new non-pipelined operation to begin
    # execution on each cycle").
    scu_instances: int = 20
    # Max replicas of a block's DFG (each needs an initiator + terminator
    # CVU pair out of 16 CVUs).
    max_replicas: int = 8
    # BBS scheduling policy: "smallest_id" is the paper's (compiler-
    # assigned IDs preserve control dependencies, section 3.1);
    # "largest_vector" and "round_robin" exist for the scheduling
    # ablation benchmark.
    bbs_policy: str = "smallest_id"
    # L1 policy: write-back, write-allocate (the paper's only memory
    # system difference vs. Fermi, §3.6/§4).
    l1_write_back: bool = True
    op_latency: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_OP_LATENCY)
    )
    # Clock domains (GHz) — used for reporting only; all timing is in
    # core cycles.
    core_ghz: float = 1.4
    l2_ghz: float = 0.7
    dram_ghz: float = 0.924

    @property
    def tile_size_bits(self) -> int:
        return self.cvt_bits


@dataclass(frozen=True)
class FermiConfig:
    """Fermi-class streaming multiprocessor baseline (GTX480-like SM)."""

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    warp_size: int = 32
    max_resident_warps: int = 48
    n_schedulers: int = 2  # dual warp schedulers, 1 instr/cycle each
    # Aggregate issue throughput: GTX480's two schedulers each issue one
    # warp instruction every other cycle onto 16-wide pipes, so the SM
    # sustains ~one 32-lane warp instruction per cycle in aggregate
    # (Bakhoda et al., ISPASS 2009 model; GPGPU-Sim-class SMs measure
    # well under the 2/cycle peak on Rodinia).
    issue_period_cycles: float = 1.0
    n_lanes: int = 32
    n_ldst_units: int = 16
    n_sfu: int = 4
    alu_latency: int = 18  # Fermi-typical dependent-issue latency
    sfu_latency: int = 22
    register_file_bytes: int = 128 * 1024
    l1_write_back: bool = False  # write-through, write-no-allocate
    # Baseline-sensitivity knobs (0 disables either).  GPGPU-Sim's
    # GTX480 configuration limits the L1 to 32 outstanding misses and
    # replays missing memory instructions through the LDST pipe; the
    # headline comparison here keeps both OFF, which *favours Fermi* —
    # the ablation benchmark quantifies how much.
    l1_mshr_limit: int = 0
    miss_replay_cycles: int = 0
    # Occupancy: the register file bounds resident warps
    # (warps <= RF bytes / (4B x 32 lanes x registers per thread)).
    # Modelled from the kernel's register pressure when enabled.
    model_occupancy: bool = True
    core_ghz: float = 1.4

    @property
    def ldst_throughput_cycles(self) -> int:
        """Cycles a warp memory instruction occupies the LDST pipe
        (32 lanes over 16 LDST units)."""
        return max(1, self.warp_size // self.n_ldst_units)

    @property
    def sfu_throughput_cycles(self) -> int:
        """Cycles a warp SFU instruction occupies the SFU pipe
        (32 lanes over 4 SFUs)."""
        return max(1, self.warp_size // self.n_sfu)


@dataclass(frozen=True)
class SGMFConfig:
    """SGMF dataflow GPGPU baseline: the same MT-CGRF fabric, statically
    configured once with the *whole kernel's* CDFG (paper §1, §2).

    SGMF has no LVC (values flow through the fabric) and no CVT/BBS.
    """

    fabric: FabricSpec = field(default_factory=FabricSpec)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    token_buffer_depth: int = 512
    ldst_reservation_entries: int = 256
    scu_instances: int = 20
    max_replicas: int = 8
    l1_write_back: bool = True
    op_latency: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_OP_LATENCY)
    )
    core_ghz: float = 1.4


def op_latency_for(op, table: Dict[str, int]) -> int:
    """Latency class lookup for an IR opcode."""
    from repro.ir.instr import Op

    if op in (Op.MUL,):
        return table["int_mul"]
    if op in (Op.FADD, Op.FSUB, Op.FMIN, Op.FMAX, Op.FNEG, Op.FABS):
        return table["fp_alu"]
    if op is Op.FMUL:
        return table["fp_mul"]
    if op is Op.FMA:
        return table["fma"]
    if op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE):
        return table["compare"]
    if op is Op.SELECT:
        return table["select"]
    if op in (Op.DIV, Op.REM, Op.FDIV):
        return table["div"]
    if op in (Op.FSQRT, Op.FRSQRT):
        return table["sqrt"]
    if op in (Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS, Op.FFLOOR):
        return table["transcendental"]
    return table["int_alu"]
