"""Content-addressed result cache: the memoization tier above execution.

``run_kernel`` is fully deterministic given ``(kernel, RunOptions)`` —
that is what the serve layer's digest goldens prove on every CI run —
so re-simulating a request that has already been answered is pure
waste.  The paper's evaluation is exactly such a workload: the same
Table 2 kernels re-run across sweeps, ablations and serving streams.
This module memoises *entire runs*: entries are keyed by the content of
everything that determines the result and hold the finished
:class:`~repro.evalharness.runner.KernelRun` plus its result digest.

Key anatomy
-----------

One cache key is the SHA-256 over four content components (plus the
formatted :data:`RESULT_CACHE_VERSION`, so schema changes invalidate
old entries wholesale):

1. **kernel content hash** — SHA-256 of the canonical textual IR
   (:func:`repro.compiler.cache.kernel_fingerprint`); renaming a
   registry entry does not fake a hit, editing one instruction misses;
2. **options fingerprint** — :meth:`RunOptions.fingerprint`, the
   canonical content key over the semantic option fields (scale,
   verify/optimize, arch configs, watchdog/retry, timeout).  Reporting
   knobs (journal, jobs, trace paths, cache dirs) are excluded, so a
   resumed or parallel sweep hits the same entries;
3. **input digest** — SHA-256 over the workload's initial memory image
   bytes, its parameter bindings and the launch size.  Workload
   construction is seeded and deterministic, but hashing the actual
   input keeps the cache honest if a generator ever changes;
4. **observability shape** — whether the run carried a per-kernel
   tracer / metrics registry.  A cached run replays its attached
   registries; a run recorded without them cannot serve a request that
   wants them.

Two storage tiers, mirroring :class:`repro.compiler.cache.CompileCache`:

* **in-memory LRU** — an :class:`~collections.OrderedDict` bounded by
  ``max_entries`` (eviction pops the least-recently-used entry and
  bumps the ``evictions`` counter);
* **on-disk** (optional, ``cache_dir=``) — one pickle per entry,
  written atomically and durably through
  :func:`repro.resilience.atomicio.atomic_pickle`, safe under
  concurrent ``--jobs`` workers and serve pools sharing the directory.

Entries are versioned and self-describing
(:class:`ResultCacheEntry` records its schema version, its own key and
the kernel name); the tolerant loader treats a corrupt, truncated,
version-skewed or mis-keyed file as a **miss** (``disk_errors``
counter, file removed) — the cache can only ever cost a re-run, never
correctness.

Trust, but verify
-----------------

``validate_cache_fraction`` arms the seeded validation mode: a
deterministic per-key draw (:meth:`ResultCache.should_validate`)
selects that fraction of hits for re-execution, and
:meth:`ResultCache.validate` compares the fresh run's
:func:`~repro.serve.result_digest` against the cached entry's.  A
mismatch raises :class:`~repro.resilience.ResultCacheDivergenceError`
— a hard failure, because it means either the cache is corrupted past
what the loader can detect or execution is not deterministic over the
key, and every cached answer is suspect.

Counters are exported through :class:`repro.obs.Metrics` under the new
``resultcache`` scope by :meth:`ResultCache.record_metrics`;
``docs/serving.md`` documents the serving-side behaviour and
``docs/api.md`` the harness-side flags.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.resilience.atomicio import atomic_pickle
from repro.resilience.errors import ResultCacheDivergenceError

__all__ = [
    "RESULT_CACHE_VERSION",
    "ResultCache",
    "ResultCacheEntry",
    "workload_digests",
]

#: Bump when the entry schema (or anything that feeds the key) changes;
#: the version participates in every key *and* is checked on load, so
#: old disk entries are invalidated wholesale instead of misread.
RESULT_CACHE_VERSION = 1

#: Process-level memo for :func:`workload_digests` — workload
#: construction is deterministic in ``(name, scale)``, so the (cheap
#: but not free) build + hash runs once per process per pair.
_DIGEST_MEMO: Dict[Tuple[str, str], Tuple[str, str]] = {}


def workload_digests(name: str, scale: str) -> Tuple[str, str]:
    """``(kernel content hash, input digest)`` for a registry workload.

    The kernel hash is the canonical-IR fingerprint shared with the
    compile cache; the input digest covers the initial memory image
    bytes, the parameter bindings (sorted) and the launch size.
    Memoised per process: workload builders are seeded and
    deterministic, so the pair is a pure function of ``(name, scale)``.
    """
    memo = _DIGEST_MEMO.get((name, scale))
    if memo is not None:
        return memo
    from repro.compiler.cache import kernel_fingerprint
    from repro.kernels.registry import make_workload

    workload = make_workload(name, scale)
    kfp = kernel_fingerprint(workload.kernel)
    h = hashlib.sha256()
    h.update(workload.memory.data.tobytes())
    h.update(repr(sorted(workload.params.items())).encode())
    h.update(f"|n_threads={workload.n_threads}".encode())
    digests = (kfp, h.hexdigest())
    _DIGEST_MEMO[(name, scale)] = digests
    return digests


def run_digest(run: Any) -> str:
    """The run's stable content digest (defers to
    :func:`repro.serve.result_digest`, so cached and served digests are
    the same function — the CI goldens compare them directly)."""
    from repro.serve.api import result_digest

    return result_digest(run)


@dataclass
class ResultCacheEntry:
    """One cached run: versioned, self-describing, digest-stamped.

    ``version`` / ``key`` / ``kernel`` make the pickle self-checking —
    the loader rejects (as a miss) any file whose recorded identity
    does not match what the reader expects.  ``digest`` is the
    :func:`~repro.serve.result_digest` of ``run`` at store time; the
    validation mode re-derives it from a fresh execution and compares.
    The run carries its own per-kernel tracer / metrics registries
    (when the producer recorded them), so a hit replays observability
    exactly like a journal replay does.
    """

    version: int
    key: str
    kernel: str
    digest: str
    run: Any  # KernelRun


class ResultCache:
    """Two-tier content-addressed memo for whole kernel runs.

    Parameters
    ----------
    cache_dir:
        Optional directory for the persistent tier (created on
        demand).  ``None`` keeps the cache in-memory only.
    max_entries:
        Bound on the in-memory LRU tier.  The disk tier is unbounded
        (one small pickle per distinct key).

    Counters are plain attributes; :meth:`stats` returns them as a
    dict, :meth:`record_metrics` publishes them under the
    ``resultcache`` metrics scope, and :meth:`merge_stats` folds a
    worker's counters back into the parent's (the ``--jobs`` /
    journal-replay contract the compile cache already follows).
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 max_entries: int = 256):
        self.cache_dir = cache_dir
        self.max_entries = max(1, int(max_entries))
        self._mem: "OrderedDict[str, ResultCacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.disk_errors = 0
        self.validations = 0
        self.divergences = 0

    # -- keys ----------------------------------------------------------
    @staticmethod
    def key_for(name: str, options: Any, want_trace: bool = False,
                want_metrics: bool = False) -> str:
        """The content key for ``(kernel name, options, obs shape)``.

        Builds (memoised) the workload to hash the kernel IR and the
        actual input, takes the canonical options fingerprint, and
        folds in whether the run records per-kernel observability —
        see the module docstring for the full key anatomy.  Raises
        :class:`~repro.resilience.OptionKeyError` if the options hold
        an unkeyable object (never silently a process-local key).
        """
        kfp, input_dg = workload_digests(name, options.scale)
        h = hashlib.sha256()
        h.update(f"repro-resultcache-v{RESULT_CACHE_VERSION}".encode())
        for part in (name, kfp, options.fingerprint(), input_dg,
                     f"trace={bool(want_trace)}",
                     f"metrics={bool(want_metrics)}"):
            h.update(b"|")
            h.update(part.encode())
        return h.hexdigest()

    # -- lookup --------------------------------------------------------
    def get(self, key: str) -> Optional[ResultCacheEntry]:
        """The entry for ``key``, or ``None`` (counted as a miss).

        Memory first (refreshing LRU recency), then the disk tier; a
        disk hit is promoted into memory.
        """
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return entry
        if self.cache_dir is not None:
            entry = self._disk_load(key)
            if entry is not None:
                self.disk_hits += 1
                self.hits += 1
                self._insert(key, entry)
                return entry
        self.misses += 1
        return None

    def put(self, key: str, kernel: str, run: Any) -> ResultCacheEntry:
        """Store a finished run under ``key`` (both tiers)."""
        entry = ResultCacheEntry(
            version=RESULT_CACHE_VERSION, key=key, kernel=kernel,
            digest=run_digest(run), run=run,
        )
        self.stores += 1
        self._insert(key, entry)
        if self.cache_dir is not None:
            self._disk_store(key, entry)
        return entry

    def _insert(self, key: str, entry: ResultCacheEntry) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)
            self.evictions += 1

    # -- validation ----------------------------------------------------
    def should_validate(self, key: str, fraction: float,
                        seed: int = 0) -> bool:
        """Deterministic seeded draw: is this hit in the validated
        sample?

        The draw hashes ``(seed, key)``, so the *same* hits validate on
        every replay of a stream (reproducible overhead), and different
        seeds sample different subsets.
        """
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        h = hashlib.sha256(f"validate|{seed}|{key}".encode()).digest()
        draw = int.from_bytes(h[:8], "big") / float(1 << 64)
        return draw < fraction

    def validate(self, entry: ResultCacheEntry,
                 fresh_run: Optional[Any]) -> None:
        """Compare a validation re-execution against the cached entry.

        Divergence — a failed re-execution or a digest mismatch — is a
        hard :class:`~repro.resilience.ResultCacheDivergenceError`;
        see the module docstring for why it cannot be soft.
        """
        self.validations += 1
        fresh = None if fresh_run is None else run_digest(fresh_run)
        if fresh != entry.digest:
            self.divergences += 1
            raise ResultCacheDivergenceError(
                "cached result diverges from validation re-execution",
                kernel=entry.kernel, key=entry.key,
                cached_digest=entry.digest, fresh_digest=fresh,
            )

    # -- persistent tier -----------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.result.pkl")

    def _disk_load(self, key: str) -> Optional[ResultCacheEntry]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt / truncated / unpicklable entry
            self._reject(path)
            return None
        # Self-description check: wrong type, schema version skew, or a
        # key mismatch (file renamed / hash collision) are all misses.
        if (not isinstance(entry, ResultCacheEntry)
                or entry.version != RESULT_CACHE_VERSION
                or entry.key != key):
            self._reject(path)
            return None
        return entry

    def _reject(self, path: str) -> None:
        self.disk_errors += 1
        try:
            os.remove(path)
        except OSError:
            pass

    def _disk_store(self, key: str, entry: ResultCacheEntry) -> None:
        try:
            atomic_pickle(self._path(key), entry)
            self.disk_writes += 1
        except Exception:
            # An unwritable directory or unpicklable attachment
            # degrades the cache to in-memory; never fails the run.
            self.disk_errors += 1

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "validations": self.validations,
            "divergences": self.divergences,
            "entries": len(self._mem),
        }

    def record_metrics(self, metrics) -> None:
        """Publish the counters into ``metrics`` (scope
        ``resultcache``)."""
        if metrics is None:
            return
        scope = metrics.scope("resultcache")
        scope.inc("hits", self.hits)
        scope.inc("misses", self.misses)
        scope.inc("stores", self.stores)
        scope.inc("evictions", self.evictions)
        scope.inc("disk_hits", self.disk_hits)
        scope.inc("disk_writes", self.disk_writes)
        scope.inc("disk_errors", self.disk_errors)
        scope.inc("validations", self.validations)
        scope.inc("divergences", self.divergences)
        scope.gauge("entries", len(self._mem))

    def merge_stats(self, stats: Optional[Dict[str, int]]) -> None:
        """Fold a worker's :meth:`stats` dict into the counters."""
        if not stats:
            return
        for field in ("hits", "misses", "stores", "evictions",
                      "disk_hits", "disk_writes", "disk_errors",
                      "validations", "divergences"):
            setattr(self, field, getattr(self, field)
                    + stats.get(field, 0))

    def __len__(self) -> int:
        return len(self._mem)

    def __repr__(self) -> str:
        tier = f", dir={self.cache_dir!r}" if self.cache_dir else ""
        return (f"ResultCache({len(self._mem)}/{self.max_entries} "
                f"entries, {self.hits} hits, {self.misses} misses{tier})")
