"""Tests for architecture configuration dataclasses and latency tables."""

import pytest

from repro.arch import (
    DEFAULT_OP_LATENCY,
    FabricSpec,
    FermiConfig,
    MemoryConfig,
    SGMFConfig,
    UnitKind,
    VGIWConfig,
    op_latency_for,
)
from repro.ir import Op


def test_default_fabric_matches_paper_table1():
    spec = FabricSpec()
    assert spec.total_units == 108
    assert spec.width * spec.height == 108
    assert spec.counts[UnitKind.COMPUTE] == 32
    assert spec.counts[UnitKind.SPECIAL] == 12
    assert spec.counts[UnitKind.LDST] == 16
    assert spec.counts[UnitKind.LVU] == 16
    assert spec.counts[UnitKind.SJU] == 16
    assert spec.counts[UnitKind.CVU] == 16


def test_config_cycles_is_34():
    # Paper section 3.2: reconfiguration takes 34 cycles on the
    # 108-unit prototype (2 passes of ~sqrt(108) plus reset).
    assert FabricSpec().config_cycles == 34


def test_fabric_counts_must_fill_grid():
    with pytest.raises(ValueError, match="grid holds"):
        FabricSpec(width=4, height=4, counts={UnitKind.COMPUTE: 3})


def test_memory_config_matches_paper():
    mem = MemoryConfig()
    assert mem.l1_size_bytes == 64 * 1024
    assert mem.l1_banks == 32
    assert mem.l1_line_bytes == 128
    assert mem.l1_ways == 4
    assert mem.l2_size_bytes == 768 * 1024
    assert mem.l2_banks == 6
    assert mem.dram_channels == 6
    assert mem.dram_banks_per_channel == 16


def test_vgiw_lvc_is_smaller_than_fermi_rf():
    # Paper section 3.4 calls the 64KB LVC "4x smaller" than the Fermi
    # RF; a GTX480 SM actually has a 128KB register file, so we model
    # the factual 2x ratio and note the discrepancy in DESIGN.md.
    assert FermiConfig().register_file_bytes == 2 * VGIWConfig().lvc_size_bytes


def test_write_policies_differ():
    # The paper's single memory-system difference (section 3.6/4).
    assert VGIWConfig().l1_write_back is True
    assert SGMFConfig().l1_write_back is True
    assert FermiConfig().l1_write_back is False


def test_scu_instances_cover_max_latency():
    # Section 3.5: a new non-pipelined op can begin every cycle.
    cfg = VGIWConfig()
    assert cfg.scu_instances >= max(
        DEFAULT_OP_LATENCY["div"],
        DEFAULT_OP_LATENCY["sqrt"],
        DEFAULT_OP_LATENCY["transcendental"],
    )


@pytest.mark.parametrize("op,key", [
    (Op.ADD, "int_alu"),
    (Op.MUL, "int_mul"),
    (Op.FADD, "fp_alu"),
    (Op.FMA, "fma"),
    (Op.LT, "compare"),
    (Op.SELECT, "select"),
    (Op.FDIV, "div"),
    (Op.DIV, "div"),
    (Op.FSQRT, "sqrt"),
    (Op.FEXP, "transcendental"),
])
def test_op_latency_classes(op, key):
    assert op_latency_for(op, DEFAULT_OP_LATENCY) == DEFAULT_OP_LATENCY[key]


def test_fermi_pipe_throughputs():
    f = FermiConfig()
    assert f.ldst_throughput_cycles == 2   # 32 lanes / 16 LDST units
    assert f.sfu_throughput_cycles == 8    # 32 lanes / 4 SFUs


def test_configs_are_frozen():
    cfg = VGIWConfig()
    with pytest.raises(Exception):
        cfg.token_buffer_depth = 1


def test_baseline_knobs_default_off():
    f = FermiConfig()
    assert f.l1_mshr_limit == 0
    assert f.miss_replay_cycles == 0
