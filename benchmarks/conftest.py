"""Shared fixtures for the benchmark harness.

The full Table 2 suite is simulated once per session (three
architectures x 21 kernels, every run verified against the reference
interpreter) and shared by all figure benchmarks.  Scale is controlled
with the ``REPRO_SCALE`` environment variable (``tiny`` for smoke runs,
``small`` — the default — for the reported numbers, ``medium`` for
closer-to-amortised behaviour).
"""

import os

import pytest

from repro.evalharness.runner import run_suite


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def suite_runs(scale):
    """All Table 2 kernels simulated on Fermi, VGIW, and SGMF."""
    return run_suite(scale=scale)
