"""Table-driven semantics tests covering every opcode in the ISA.

The EVAL table is shared by the interpreter and all three timing
simulators, so these tests pin the ISA's arithmetic contract in one
place.
"""

import math

import pytest

from repro.ir import EVAL, Op
from repro.ir.instr import (
    INT64_MAX,
    INT64_MIN,
    UnitClass,
    result_dtype,
    unit_class,
)
from repro.ir.types import DType

NAN = float("nan")
INF = float("inf")

CASES = [
    (Op.ADD, (7, 5), 12),
    (Op.SUB, (7, 5), 2),
    (Op.MUL, (7, 5), 35),
    (Op.MIN, (7, 5), 5),
    (Op.MAX, (7, 5), 7),
    (Op.AND, (0b1100, 0b1010), 0b1000),
    (Op.OR, (0b1100, 0b1010), 0b1110),
    (Op.XOR, (0b1100, 0b1010), 0b0110),
    (Op.SHL, (3, 2), 12),
    (Op.SHR, (12, 2), 3),
    (Op.NEG, (7,), -7),
    (Op.ABS, (-7,), 7),
    (Op.FADD, (1.5, 2.25), 3.75),
    (Op.FSUB, (1.5, 2.25), -0.75),
    (Op.FMUL, (1.5, 2.0), 3.0),
    (Op.FMIN, (1.5, 2.0), 1.5),
    (Op.FMAX, (1.5, 2.0), 2.0),
    (Op.FNEG, (1.5,), -1.5),
    (Op.FABS, (-1.5,), 1.5),
    (Op.FMA, (2.0, 3.0, 1.0), 7.0),
    (Op.EQ, (3, 3), True),
    (Op.NE, (3, 4), True),
    (Op.LT, (3, 4), True),
    (Op.LE, (4, 4), True),
    (Op.GT, (5, 4), True),
    (Op.GE, (4, 4), True),
    (Op.I2F, (3,), 3.0),
    (Op.F2I, (3.9,), 3),       # truncation toward zero
    (Op.F2I, (-3.9,), -3),
    (Op.MOV, (42,), 42),
    (Op.SELECT, (True, 1, 2), 1),
    (Op.SELECT, (False, 1, 2), 2),
    (Op.DIV, (7, 2), 3),       # floor division
    (Op.DIV, (-7, 2), -4),
    (Op.REM, (7, 3), 1),
    (Op.REM, (-7, 3), 2),      # Python semantics: sign follows divisor
    (Op.FDIV, (7.0, 2.0), 3.5),
    (Op.FSQRT, (16.0,), 4.0),
    (Op.FRSQRT, (4.0,), 0.5),
    (Op.FEXP, (0.0,), 1.0),
    (Op.FLOG, (1.0,), 0.0),
    (Op.FSIN, (0.0,), 0.0),
    (Op.FCOS, (0.0,), 1.0),
    (Op.FFLOOR, (1.9,), 1.0),
    (Op.FFLOOR, (-1.1,), -2.0),
]


@pytest.mark.parametrize("op,args,expected", CASES)
def test_eval_semantics(op, args, expected):
    got = EVAL[op](*args)
    if isinstance(expected, float):
        assert got == pytest.approx(expected)
    else:
        assert got == expected


def test_every_non_memory_op_has_eval():
    for op in Op:
        if op in (Op.LOAD, Op.STORE):
            assert op not in EVAL
        else:
            assert op in EVAL, f"{op} missing from EVAL"


def test_not_is_logical_on_bools_bitwise_on_ints():
    assert EVAL[Op.NOT](True) is False
    assert EVAL[Op.NOT](False) is True
    assert EVAL[Op.NOT](0) == -1  # bitwise complement


@pytest.mark.parametrize("op", [Op.DIV, Op.REM, Op.FDIV, Op.FSQRT,
                                Op.FRSQRT, Op.FEXP, Op.FLOG, Op.FSIN,
                                Op.FCOS, Op.FFLOOR])
def test_special_ops_map_to_scu(op):
    assert unit_class(op) is UnitClass.SPECIAL


@pytest.mark.parametrize("op", [Op.ADD, Op.FMUL, Op.SELECT, Op.MOV, Op.LT])
def test_compute_ops_map_to_alu_fpu(op):
    assert unit_class(op) is UnitClass.COMPUTE


def test_memory_ops_map_to_ldst():
    assert unit_class(Op.LOAD) is UnitClass.MEMORY
    assert unit_class(Op.STORE) is UnitClass.MEMORY


# ----------------------------------------------------------------------
# Edge-case semantics (the pinned table in repro/ir/instr.py).
#
# Every entry here used to raise a host exception (ZeroDivisionError,
# OverflowError, math domain error) or produce an unbounded Python int
# before the semantics were made total; the fuzzing corpus under
# tests/corpus/ replays the same cases end-to-end on every engine.
# ----------------------------------------------------------------------
EDGE_CASES = [
    # integer division by zero: x / 0 == x % 0 == 0
    (Op.DIV, (7, 0), 0),
    (Op.DIV, (-7, 0), 0),
    (Op.DIV, (0, 0), 0),
    (Op.REM, (7, 0), 0),
    (Op.REM, (-7, 0), 0),
    # shift amounts masked to the low 6 bits (mod 64)
    (Op.SHL, (123, 70), 123 << 6),
    (Op.SHL, (123, 64), 123),
    (Op.SHR, (123, 70), 123 >> 6),
    (Op.SHR, (-9, 70), -1),      # arithmetic shift of negatives
    (Op.SHR, (-9, 64), -9),
    # SHL wraps like a signed 64-bit register
    (Op.SHL, (1, 63), INT64_MIN),
    (Op.SHL, (1, 62), 1 << 62),
    (Op.SHL, (3, 63), INT64_MIN),
    # F2I: NaN -> 0, out-of-range saturates
    (Op.F2I, (NAN,), 0),
    (Op.F2I, (INF,), INT64_MAX),
    (Op.F2I, (-INF,), INT64_MIN),
    (Op.F2I, (1e30,), INT64_MAX),
    (Op.F2I, (-1e30,), INT64_MIN),
    # I2F: magnitudes beyond float range saturate to +-inf
    (Op.I2F, (1 << 2000,), INF),
    (Op.I2F, (-(1 << 2000),), -INF),
    # FDIV: IEEE-754 poles
    (Op.FDIV, (1.0, 0.0), INF),
    (Op.FDIV, (-1.0, 0.0), -INF),
    (Op.FDIV, (1.0, -0.0), -INF),
    (Op.FDIV, (0.0, 0.0), NAN),
    (Op.FDIV, (NAN, 0.0), NAN),
    # special-function poles (all total, no host exceptions)
    (Op.FSQRT, (-1.0,), NAN),
    (Op.FRSQRT, (0.0,), INF),
    (Op.FRSQRT, (-1.0,), NAN),
    (Op.FRSQRT, (INF,), 0.0),
    (Op.FEXP, (800.0,), INF),     # overflow -> +inf
    (Op.FEXP, (-800.0,), 0.0),    # underflow -> 0
    (Op.FLOG, (0.0,), -INF),
    (Op.FLOG, (-1.0,), NAN),
    (Op.FSIN, (NAN,), NAN),
    (Op.FSIN, (INF,), NAN),
    (Op.FCOS, (-INF,), NAN),
    (Op.FFLOOR, (NAN,), NAN),
    (Op.FFLOOR, (INF,), INF),
    (Op.FFLOOR, (-INF,), -INF),
]


@pytest.mark.parametrize("op,args,expected", EDGE_CASES)
def test_edge_case_semantics_are_total(op, args, expected):
    got = EVAL[op](*args)
    if isinstance(expected, float) and math.isnan(expected):
        assert isinstance(got, float) and math.isnan(got), (op, args, got)
    else:
        assert got == expected, (op, args, got)
        if isinstance(expected, float) and math.isinf(expected):
            assert math.copysign(1.0, got) == math.copysign(1.0, expected)


def test_shift_results_stay_in_i64():
    """SHL never escapes the signed 64-bit range, whatever the inputs."""
    for a in (0, 1, -1, 123, -9, INT64_MAX, INT64_MIN):
        for b in (0, 1, 31, 63, 64, 70, 127):
            v = EVAL[Op.SHL](a, b)
            assert INT64_MIN <= v <= INT64_MAX, (a, b, v)


def test_result_dtypes():
    assert result_dtype(Op.FADD) is DType.FLOAT
    assert result_dtype(Op.LT) is DType.PRED
    assert result_dtype(Op.ADD) is DType.INT
    assert result_dtype(Op.MOV, DType.FLOAT) is DType.FLOAT
    assert result_dtype(Op.LOAD, DType.INT) is DType.INT
