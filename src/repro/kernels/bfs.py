"""BFS — breadth-first search (Rodinia), paper Table 2.

Two kernels per level, exactly as in Rodinia's ``bfs/kernel.cu``:

* ``Kernel`` (paper: 8 basic blocks) expands the current frontier: each
  frontier node relaxes its unvisited neighbours and marks them in the
  updating mask;
* ``Kernel2`` (paper: 3 basic blocks) commits the updating mask into the
  frontier mask and the visited set, and raises the not-done flag.

The graph is CSR (row_ptr/col).  Launches are race-free: ``Kernel``
writes ``cost``/``umask`` only at unvisited nodes (all writers agree on
the value since the frontier is one BFS level), and ``Kernel2`` touches
only thread-private indices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def bfs_kernel1() -> Kernel:
    kb = KernelBuilder(
        "bfs_kernel",
        params=["row_ptr", "col", "mask", "visited", "umask", "cost", "n"],
    )
    t = kb.tid()
    with kb.if_(t < kb.param("n")):
        m = kb.load(kb.param("mask") + t, DType.INT)
        with kb.if_(m == 1):
            kb.store(kb.param("mask") + t, 0)
            my_cost = kb.load(kb.param("cost") + t, DType.INT)
            start = kb.load(kb.param("row_ptr") + t, DType.INT)
            end = kb.load(kb.param("row_ptr") + t + 1, DType.INT)
            with kb.for_range(start, end, name="edge") as i:
                nb = kb.load(kb.param("col") + i, DType.INT)
                vis = kb.load(kb.param("visited") + nb, DType.INT)
                with kb.if_(vis == 0):
                    kb.store(kb.param("cost") + nb, my_cost + 1)
                    kb.store(kb.param("umask") + nb, 1)
    return kb.build()


def bfs_kernel2() -> Kernel:
    kb = KernelBuilder(
        "bfs_kernel2", params=["mask", "visited", "umask", "over", "n"]
    )
    t = kb.tid()
    with kb.if_(t < kb.param("n")):
        u = kb.load(kb.param("umask") + t, DType.INT)
        with kb.if_(u == 1):
            kb.store(kb.param("mask") + t, 1)
            kb.store(kb.param("visited") + t, 1)
            kb.store(kb.param("over"), 1)
            kb.store(kb.param("umask") + t, 0)
    return kb.build()


def random_csr_graph(n: int, avg_degree: int, seed: int
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """A random directed graph in CSR form."""
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, n).clip(0, 4 * avg_degree)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    row_ptr[1:] = np.cumsum(degrees)
    col = rng.integers(0, n, row_ptr[-1])
    return row_ptr, col


def _frontier_state(row_ptr, col, source: int, level: int):
    """Mask/visited/cost arrays after ``level`` completed BFS levels."""
    n = len(row_ptr) - 1
    cost = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=np.int64)
    cost[source] = 0
    visited[source] = 1
    frontier = np.array([source])
    for _ in range(level):
        nxt = []
        for u in frontier:
            for e in range(row_ptr[u], row_ptr[u + 1]):
                v = col[e]
                if not visited[v]:
                    visited[v] = 1
                    cost[v] = cost[u] + 1
                    nxt.append(v)
        frontier = np.unique(np.array(nxt, dtype=np.int64))
        if len(frontier) == 0:
            break
    mask = np.zeros(n, dtype=np.int64)
    mask[frontier] = 1
    return mask, visited, cost


def make_kernel1_workload(scale: str = "small", seed: int = 11) -> Workload:
    """One frontier-expansion launch on a random graph."""
    n = pick(scale, 256, 4096, 16384)
    row_ptr, col = random_csr_graph(n, avg_degree=4, seed=seed)
    mask, visited, cost = _frontier_state(row_ptr, col, source=0, level=1)

    mem = MemoryImage(int(row_ptr[-1]) + 6 * n + 64)
    b_rp = mem.alloc_array("row_ptr", row_ptr)
    b_col = mem.alloc_array("col", col)
    b_mask = mem.alloc_array("mask", mask)
    b_vis = mem.alloc_array("visited", visited)
    b_umask = mem.alloc_array("umask", np.zeros(n))
    b_cost = mem.alloc_array("cost", cost)

    # Golden model of one launch.
    e_mask = mask.copy()
    e_umask = np.zeros(n, dtype=np.int64)
    e_cost = cost.copy()
    for t in range(n):
        if mask[t] == 1:
            e_mask[t] = 0
            for e in range(row_ptr[t], row_ptr[t + 1]):
                v = col[e]
                if visited[v] == 0:
                    e_cost[v] = cost[t] + 1
                    e_umask[v] = 1

    return Workload(
        name="bfs/Kernel",
        app="BFS",
        kernel=bfs_kernel1(),
        memory=mem,
        params={
            "row_ptr": b_rp, "col": b_col, "mask": b_mask,
            "visited": b_vis, "umask": b_umask, "cost": b_cost, "n": n,
        },
        n_threads=n,
        expected={
            "mask": e_mask.astype(float),
            "umask": e_umask.astype(float),
            "cost": e_cost.astype(float),
        },
        paper_blocks=8,
    )


def make_kernel2_workload(scale: str = "small", seed: int = 12) -> Workload:
    """One frontier-commit launch."""
    n = pick(scale, 256, 4096, 16384)
    rng = np.random.default_rng(seed)
    umask = (rng.uniform(size=n) < 0.3).astype(np.int64)
    mask = np.zeros(n, dtype=np.int64)
    visited = (rng.uniform(size=n) < 0.5).astype(np.int64)

    mem = MemoryImage(4 * n + 64)
    b_mask = mem.alloc_array("mask", mask)
    b_vis = mem.alloc_array("visited", visited)
    b_umask = mem.alloc_array("umask", umask)
    b_over = mem.alloc_array("over", [0.0])

    e_mask = np.where(umask == 1, 1, mask)
    e_vis = np.where(umask == 1, 1, visited)
    e_over = np.array([1.0 if umask.any() else 0.0])

    return Workload(
        name="bfs/Kernel2",
        app="BFS",
        kernel=bfs_kernel2(),
        memory=mem,
        params={
            "mask": b_mask, "visited": b_vis, "umask": b_umask,
            "over": b_over, "n": n,
        },
        n_threads=n,
        expected={
            "mask": e_mask.astype(float),
            "visited": e_vis.astype(float),
            "umask": np.zeros(n),
            "over": e_over,
        },
        paper_blocks=3,
    )
