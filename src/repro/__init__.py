"""repro — reproduction of the VGIW hybrid dataflow/von Neumann GPGPU.

This package implements the system described in:

    Dani Voitsechov and Yoav Etsion,
    "Control Flow Coalescing on a Hybrid Dataflow/von Neumann GPGPU",
    MICRO-48, 2015.

It provides, as a pure-Python simulation library:

* a CUDA-like virtual kernel ISA and builder DSL (:mod:`repro.ir`),
* a compiler that turns kernels into per-basic-block dataflow graphs,
  places and routes them on an MT-CGRF grid, and allocates live-value
  IDs (:mod:`repro.compiler`),
* the VGIW processor — basic block scheduler, control vector table,
  live value cache, and MT-CGRF execution core (:mod:`repro.vgiw`),
* a Fermi-class SIMT GPGPU baseline (:mod:`repro.simt`),
* the SGMF dataflow GPGPU baseline (:mod:`repro.sgmf`),
* a GPU memory hierarchy — banked L1, L2, GDDR5-style DRAM
  (:mod:`repro.memory`),
* a GPUWattch-style energy model (:mod:`repro.power`),
* Rodinia-like benchmark kernels (:mod:`repro.kernels`),
* the evaluation harness that regenerates every table and figure of the
  paper (:mod:`repro.evalharness`),
* the resilience subsystem — typed errors, forward-progress watchdogs,
  deterministic fault injection, fault-isolating suite runs
  (:mod:`repro.resilience`, see ``docs/resilience.md``), and
* the observability layer — cycle-level tracing with Chrome-trace
  export and a cross-engine metric registry (:mod:`repro.obs`), riding
  on the unified engine protocol / result base / backend registry
  (:mod:`repro.engine`, see ``docs/observability.md``).

Quickstart::

    from repro.ir import KernelBuilder, DType

    kb = KernelBuilder("saxpy", params=["a", "x", "y", "out", "n"])
    i = kb.tid()
    with kb.if_(i < kb.param("n")):
        xv = kb.load(kb.param("x") + i, DType.FLOAT)
        yv = kb.load(kb.param("y") + i, DType.FLOAT)
        kb.store(kb.param("out") + i, kb.fparam("a") * xv + yv)
    kernel = kb.build()
"""

__version__ = "0.1.0"

from repro.ir import DType, Kernel, KernelBuilder

__all__ = ["DType", "Kernel", "KernelBuilder", "__version__"]
