"""Typed exception hierarchy for the whole reproduction.

Every failure the library can produce descends from :class:`ReproError`,
so callers (most importantly the fault-isolating
:func:`repro.evalharness.runner.run_suite`) can catch *one* type and
know they have a structured, reportable failure instead of a bare
``RuntimeError``/``AssertionError`` escaping a ten-minute sweep:

``ReproError``
    ├── ``CompileError``      — IR construction/validation, DFG build,
    │                           liveness, scheduling, partitioning
    ├── ``MappingError``      — a graph does not fit a fabric
    │                           (``CapacityError``, ``SGMFUnmappableError``)
    ├── ``SimulationError``   — runtime model protocol violations
    │       ├── ``SimulationHangError`` — deadlock/livelock caught by the
    │       │                   forward-progress watchdog (or a per-kernel
    │       │                   wall-clock timeout); carries a
    │       │                   :class:`~repro.resilience.watchdog.DiagnosticSnapshot`
    │       └── ``WorkerCrashError`` — a ``--jobs`` pool worker died
    │                           (SIGKILL/OOM) while running a kernel
    ├── ``VerificationError`` — a machine's final memory diverged from
    │                           the reference interpreter
    └── ``FaultInjectedError``— an injected fault deliberately aborted a run

Design notes
------------

* ``VerificationError`` used to subclass ``AssertionError``, which made
  it vanish under ``python -O`` idioms (``assert``-based call sites) and
  let ``pytest.raises(AssertionError)`` patterns swallow it silently.
  It now descends from :class:`ReproError`; the old import path
  ``repro.evalharness.VerificationError`` remains as a deprecation
  alias.
* Every :class:`ReproError` accepts keyword *context* (kernel, block,
  thread, cycle, ...) that is appended to the message and preserved in
  machine-readable form on ``.context`` for the structured failure logs
  the degraded suite report embeds.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class of every structured failure in the library.

    ``context`` keyword arguments are rendered into the message (sorted,
    so messages are deterministic) and kept on ``self.context``.
    """

    def __init__(self, message: str, **context: Any):
        self.context: Dict[str, Any] = dict(context)
        if context:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(context.items())
            )
            message = f"{message} [{rendered}]"
        super().__init__(message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (used by the degraded suite report)."""
        return {
            "type": type(self).__name__,
            "message": str(self),
            "context": {k: _jsonable(v) for k, v in self.context.items()},
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class CompileError(ReproError):
    """The compilation flow rejected or mangled a kernel."""


class MappingError(ReproError):
    """A dataflow graph cannot be mapped onto a fabric."""


class SimulationError(ReproError):
    """A simulator hit a runtime protocol violation."""


class SimulationHangError(SimulationError):
    """Deadlock/livelock: the forward-progress watchdog tripped.

    ``snapshot`` is a :class:`repro.resilience.watchdog.DiagnosticSnapshot`
    describing the machine state at the moment the watchdog fired (or
    ``None`` when the raising site had no snapshot to attach).
    """

    def __init__(self, message: str, snapshot: Optional[object] = None,
                 **context: Any):
        super().__init__(message, **context)
        self.snapshot = snapshot

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        if self.snapshot is not None and hasattr(self.snapshot, "to_dict"):
            out["snapshot"] = self.snapshot.to_dict()
        return out


class WorkerCrashError(SimulationError):
    """A process-pool worker died while running a kernel.

    Raised by the crash-tolerant ``run_suite`` driver when a worker is
    killed hard (SIGKILL, OOM, segfault) — there is no in-process
    exception to preserve, so this record is synthesised from the pool's
    ``BrokenProcessPool`` signal.  Kernels whose crash-retry budget is
    exhausted become degraded rows carrying this error.
    """


class VerificationError(ReproError):
    """A simulator's final memory diverged from the interpreter's."""


class OptionKeyError(ReproError):
    """An execution-option value cannot be keyed canonically.

    Raised by :meth:`repro.evalharness.RunOptions.fingerprint` when an
    option field holds an object with no stable value representation
    (no dataclass fields, no ``cache_key()`` hook, and a default
    ``repr`` that embeds a memory address).  Such a value would make
    every fingerprint process-unique, silently defeating request
    batching in :mod:`repro.serve` and the result cache — so it is an
    error, never an address embedded in the key.
    """


class ResultCacheError(ReproError):
    """The result cache itself failed (not the cached execution)."""


class ResultCacheDivergenceError(ResultCacheError):
    """Validation re-execution diverged from a cached result.

    Raised by the seeded validation mode
    (``validate_cache_fraction``): a sampled cache hit was re-executed
    and its image/cycle digest did not match the cached entry's.  This
    is a hard failure — it means either the cache was corrupted past
    what the tolerant loader can detect, or execution is not
    deterministic over the cache key, and every cached answer is
    suspect.
    """


class FaultInjectedError(SimulationError):
    """An injected ``abort`` fault deliberately killed the run (used to
    prove the harness isolates hard crashes)."""
