"""Instructions and terminators of the virtual kernel ISA.

Each opcode is annotated with the MT-CGRF functional-unit class that
executes it (paper section 3.5):

* ``COMPUTE`` — the merged FPU-ALU compute units (pipelined, II = 1).
* ``SPECIAL`` — special compute units (SCUs) that pool non-pipelined
  circuits such as dividers and square roots.
* ``MEMORY``  — load/store units (LDSTUs) on the grid perimeter.

Live-value traffic (LVU), thread initiation/termination (CVU) and
split/join nodes are not opcodes; the compiler materialises them as
dataflow-graph nodes when it extracts each basic block's graph.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.ir.types import DType, Operand


class UnitClass(enum.Enum):
    """Functional-unit class that executes an opcode."""

    COMPUTE = "compute"
    SPECIAL = "special"
    MEMORY = "memory"


class Op(enum.Enum):
    """Opcodes of the virtual ISA."""

    # Integer arithmetic / logic (ALU side of the merged unit).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    ABS = "abs"
    # Floating point (FPU side of the merged unit).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMIN = "fmin"
    FMAX = "fmax"
    FNEG = "fneg"
    FABS = "fabs"
    FMA = "fma"
    # Comparisons (operate on either numeric type, produce PRED).
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # Conversions and moves.
    I2F = "i2f"
    F2I = "f2i"  # truncation toward zero
    MOV = "mov"
    SELECT = "select"  # (pred, if_true, if_false)
    # Non-pipelined operations, executed by the SCUs.
    DIV = "div"  # integer division, toward -inf; x/0 == 0 (pinned)
    REM = "rem"  # integer remainder, sign follows divisor; x%0 == 0
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FRSQRT = "frsqrt"
    FEXP = "fexp"
    FLOG = "flog"
    FSIN = "fsin"
    FCOS = "fcos"
    FFLOOR = "ffloor"
    # Memory.
    LOAD = "load"  # dst <- mem[src0]
    STORE = "store"  # mem[src0] <- src1


_SPECIAL_OPS = {
    Op.DIV,
    Op.REM,
    Op.FDIV,
    Op.FSQRT,
    Op.FRSQRT,
    Op.FEXP,
    Op.FLOG,
    Op.FSIN,
    Op.FCOS,
    Op.FFLOOR,
}

_MEMORY_OPS = {Op.LOAD, Op.STORE}

_FLOAT_RESULT_OPS = {
    Op.FADD,
    Op.FSUB,
    Op.FMUL,
    Op.FMIN,
    Op.FMAX,
    Op.FNEG,
    Op.FABS,
    Op.FMA,
    Op.I2F,
    Op.FDIV,
    Op.FSQRT,
    Op.FRSQRT,
    Op.FEXP,
    Op.FLOG,
    Op.FSIN,
    Op.FCOS,
    Op.FFLOOR,
}

_PRED_RESULT_OPS = {Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE}


def unit_class(op: Op) -> UnitClass:
    """Return the functional-unit class that executes ``op``."""
    if op in _SPECIAL_OPS:
        return UnitClass.SPECIAL
    if op in _MEMORY_OPS:
        return UnitClass.MEMORY
    return UnitClass.COMPUTE


def result_dtype(op: Op, operand_dtype: DType = DType.INT) -> DType:
    """Return the data type an opcode produces.

    ``MOV`` and ``SELECT`` are polymorphic; for those the caller supplies
    the operand type.
    """
    if op in _FLOAT_RESULT_OPS:
        return DType.FLOAT
    if op in _PRED_RESULT_OPS:
        return DType.PRED
    if op in (Op.MOV, Op.SELECT, Op.LOAD):
        return operand_dtype
    return DType.INT


@dataclass
class Instr:
    """A three-address instruction.

    ``dst`` is ``None`` only for ``STORE``.  ``srcs`` holds the operands
    in opcode-defined order.  ``dtype`` is the result data type (for
    ``STORE``, the type of the stored value).
    """

    op: Op
    dst: Optional[str]
    srcs: Tuple[Operand, ...]
    dtype: DType

    def __repr__(self) -> str:
        srcs = ", ".join(repr(s) for s in self.srcs)
        if self.dst is None:
            return f"{self.op.value} {srcs}"
        return f"%{self.dst} = {self.op.value} {srcs}"


class TermKind(enum.Enum):
    """Kinds of basic-block terminators."""

    JMP = "jmp"
    BR = "br"
    RET = "ret"


@dataclass
class Terminator:
    """Block terminator: an unconditional jump, a two-way conditional
    branch, or a kernel exit.

    The conditional branch carries a PRED operand; a true outcome
    transfers control to ``true_target``, false to ``false_target``.
    On a VGIW machine the terminator is executed by a control vector
    unit acting as a thread terminator (paper section 3.5, Fig. 6).
    """

    kind: TermKind
    cond: Optional[Operand] = None
    true_target: Optional[str] = None
    false_target: Optional[str] = None

    @staticmethod
    def jmp(target: str) -> "Terminator":
        return Terminator(TermKind.JMP, true_target=target)

    @staticmethod
    def br(cond: Operand, true_target: str, false_target: str) -> "Terminator":
        return Terminator(
            TermKind.BR, cond=cond, true_target=true_target, false_target=false_target
        )

    @staticmethod
    def ret() -> "Terminator":
        return Terminator(TermKind.RET)

    def targets(self) -> Tuple[str, ...]:
        """Successor block names, in (true, false) order."""
        if self.kind is TermKind.JMP:
            return (self.true_target,)
        if self.kind is TermKind.BR:
            return (self.true_target, self.false_target)
        return ()

    def __repr__(self) -> str:
        if self.kind is TermKind.JMP:
            return f"jmp {self.true_target}"
        if self.kind is TermKind.BR:
            return f"br {self.cond!r}, {self.true_target}, {self.false_target}"
        return "ret"


def _as_bool(x: Union[int, float, bool]) -> bool:
    return bool(x)


# ----------------------------------------------------------------------
# Pinned edge-case semantics
# ----------------------------------------------------------------------
# Every opcode below is *total*: no input (division by zero, out-of-range
# shift amount, non-finite float) may raise.  The full contract is
# rendered as the normative table in ``docs/semantics.md`` and is
# unit-tested per opcode in ``tests/test_instr_semantics.py`` (scalar)
# and ``tests/test_vecops.py`` (the numpy batch kernels in
# :mod:`repro.ir.vecops`, which must agree bit-for-bit); the
# differential fuzzer (``repro.fuzz``) relies on it to generate
# arbitrary operand values without crashing any substrate.
#
#   integer ops   operands/results -> wrapping signed 64-bit two's
#                                      complement (the INT datapath is
#                                      a 64-bit register, like SHL
#                                      always was); float operands of
#                                      integer ops convert by the F2I
#                                      rule first
#   DIV / REM     divisor 0        -> 0 (hardware-style "garbage" pinned
#                                      to a deterministic value)
#   DIV           INT64_MIN / -1   -> INT64_MIN (wraps)
#   SHL / SHR     shift amount     -> masked to [0, 63] (64-bit datapath)
#   F2I           NaN              -> 0
#                 out of i64 range -> saturates to INT64_MIN/MAX
#                 (also the rule for *every* float->int conversion:
#                 INT-typed result coercion, int-op operands, addresses)
#   I2F           |a| > DBL_MAX    -> +/-inf;  NaN -> NaN
#   FDIV          x/0              -> +/-inf (IEEE sign), 0/0, nan/0 -> nan
#   FSQRT         a < 0            -> nan
#   FRSQRT        a == 0           -> +inf;  a < 0 -> nan
#   FEXP          overflow         -> +inf
#   FLOG          a == 0           -> -inf;  a < 0 -> nan
#   FSIN / FCOS   nan / +/-inf     -> nan
#   FFLOOR        nan / +/-inf     -> propagated unchanged

_I64_MASK = (1 << 64) - 1
_I64_SIGN = 1 << 63
INT64_MAX = (1 << 63) - 1
INT64_MIN = -(1 << 63)
_TWO63_F = float(1 << 63)


def _wrap_i64(v: int) -> int:
    """Wrap ``v`` to signed 64-bit two's complement."""
    v &= _I64_MASK
    return v - (1 << 64) if v & _I64_SIGN else v


def _asi(v) -> int:
    """Integer-op operand conversion: the INT datapath is a signed
    64-bit register, so integer values wrap and floats convert by the
    pinned F2I rule (truncate toward zero, NaN -> 0, saturate)."""
    if isinstance(v, float):
        return _f2i(v)
    return _wrap_i64(int(v))


def coerce_i64(v) -> int:
    """INT-typed result coercion (total): wraps integers to the 64-bit
    datapath, converts floats by the pinned F2I rule."""
    if isinstance(v, float):
        return _f2i(v)
    return _wrap_i64(int(v))


def _add(a, b) -> int:
    return _wrap_i64(_asi(a) + _asi(b))


def _sub(a, b) -> int:
    return _wrap_i64(_asi(a) - _asi(b))


def _mul(a, b) -> int:
    return _wrap_i64(_asi(a) * _asi(b))


def _div(a, b) -> int:
    a, b = _asi(a), _asi(b)
    return _wrap_i64(a // b) if b else 0


def _rem(a, b) -> int:
    a, b = _asi(a), _asi(b)
    return a % b if b else 0


def _shl(a, b) -> int:
    return _wrap_i64(_asi(a) << (_asi(b) & 63))


def _shr(a, b) -> int:
    return _asi(a) >> (_asi(b) & 63)


def _neg(a) -> int:
    return _wrap_i64(-_asi(a))


def _abs(a) -> int:
    return _wrap_i64(abs(_asi(a)))


def _f2i(a) -> int:
    a = float(a)
    if a != a:  # NaN
        return 0
    if a >= _TWO63_F:
        return INT64_MAX
    if a <= -_TWO63_F:
        return INT64_MIN
    return int(a)  # truncation toward zero


def _i2f(a) -> float:
    if isinstance(a, float):
        if a != a or a in (math.inf, -math.inf):
            return a  # NaN / infinities propagate (pinned)
        a = int(a)
    else:
        a = int(a)
    try:
        return float(a)
    except OverflowError:
        return math.inf if a > 0 else -math.inf


def _fdiv(a, b) -> float:
    a, b = float(a), float(b)
    if b == 0.0:
        if a != a or a == 0.0:
            return math.nan
        inf = math.copysign(math.inf, a)
        return inf if math.copysign(1.0, b) > 0 else -inf
    return a / b


def _fsqrt(a) -> float:
    a = float(a)
    return math.nan if a < 0.0 else math.sqrt(a)


def _frsqrt(a) -> float:
    a = float(a)
    if a != a or a < 0.0:
        return math.nan
    if a == 0.0:
        return math.inf
    if a == math.inf:
        return 0.0
    return 1.0 / math.sqrt(a)


def _fexp(a) -> float:
    try:
        return math.exp(float(a))
    except OverflowError:
        return math.inf


def _flog(a) -> float:
    a = float(a)
    if a != a or a < 0.0:
        return math.nan
    if a == 0.0:
        return -math.inf
    return math.log(a)


def _fsin(a) -> float:
    a = float(a)
    return math.nan if (a != a or a in (math.inf, -math.inf)) else math.sin(a)


def _fcos(a) -> float:
    a = float(a)
    return math.nan if (a != a or a in (math.inf, -math.inf)) else math.cos(a)


def _ffloor(a) -> float:
    a = float(a)
    if a != a or a in (math.inf, -math.inf):
        return a
    return float(math.floor(a))


#: Pure evaluation functions for every non-memory opcode, shared by the
#: reference interpreter and all three timing simulators so that the
#: machines are functionally identical by construction.  Every function
#: is total (see the pinned edge-case table above / docs/fuzzing.md).
EVAL: Dict[Op, Callable] = {
    Op.ADD: _add,
    Op.SUB: _sub,
    Op.MUL: _mul,
    Op.MIN: lambda a, b: min(_asi(a), _asi(b)),
    Op.MAX: lambda a, b: max(_asi(a), _asi(b)),
    Op.AND: lambda a, b: _asi(a) & _asi(b),
    Op.OR: lambda a, b: _asi(a) | _asi(b),
    Op.XOR: lambda a, b: _asi(a) ^ _asi(b),
    Op.SHL: _shl,
    Op.SHR: _shr,
    Op.NEG: _neg,
    Op.NOT: lambda a: (not _as_bool(a)) if isinstance(a, bool) else ~_asi(a),
    Op.ABS: _abs,
    Op.FADD: lambda a, b: float(a) + float(b),
    Op.FSUB: lambda a, b: float(a) - float(b),
    Op.FMUL: lambda a, b: float(a) * float(b),
    Op.FMIN: lambda a, b: min(float(a), float(b)),
    Op.FMAX: lambda a, b: max(float(a), float(b)),
    Op.FNEG: lambda a: -float(a),
    Op.FABS: lambda a: abs(float(a)),
    Op.FMA: lambda a, b, c: float(a) * float(b) + float(c),
    Op.EQ: lambda a, b: a == b,
    Op.NE: lambda a, b: a != b,
    Op.LT: lambda a, b: a < b,
    Op.LE: lambda a, b: a <= b,
    Op.GT: lambda a, b: a > b,
    Op.GE: lambda a, b: a >= b,
    Op.I2F: _i2f,
    Op.F2I: _f2i,
    Op.MOV: lambda a: a,
    Op.SELECT: lambda p, a, b: a if _as_bool(p) else b,
    Op.DIV: _div,
    Op.REM: _rem,
    Op.FDIV: _fdiv,
    Op.FSQRT: _fsqrt,
    Op.FRSQRT: _frsqrt,
    Op.FEXP: _fexp,
    Op.FLOG: _flog,
    Op.FSIN: _fsin,
    Op.FCOS: _fcos,
    Op.FFLOOR: _ffloor,
}
