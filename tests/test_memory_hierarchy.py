"""Tests for the cache/DRAM timing models and the coalescer."""

import pytest

from repro.arch import MemoryConfig
from repro.memory import (
    Cache,
    DRAM,
    LiveValueCache,
    MemorySystem,
    coalesce_word_addresses,
)


def make_l1(next_level=None, write_back=True, banks=4):
    return Cache(
        "L1", size_bytes=4096, line_bytes=128, ways=4, banks=banks,
        hit_latency=8, next_level=next_level, write_back=write_back,
    )


def test_cold_miss_then_hit():
    l1 = make_l1()
    t_miss = l1.access(0.0, line_addr=0, is_write=False)
    t_hit = l1.access(t_miss, line_addr=0, is_write=False)
    assert l1.stats.read_misses == 1
    assert l1.stats.read_hits == 1
    assert t_hit - t_miss == 8  # pure hit latency
    assert t_miss >= 16  # miss costs at least two traversals


def test_miss_latency_includes_next_level():
    dram = DRAM(MemoryConfig())
    l1 = make_l1(next_level=dram)
    t = l1.access(0.0, 0, False)
    assert t >= MemoryConfig().dram_row_miss_latency
    assert dram.stats.reads == 1


def _same_set_lines(cache, target_set, count):
    """Line addresses that map to one set under the XOR set hash."""
    lines = []
    tag = 0
    while len(lines) < count:
        low = target_set ^ (tag % cache.n_sets)
        lines.append(tag * cache.n_sets + low)
        tag += 1
    return lines


def test_lru_eviction():
    l1 = make_l1()  # 4096/128/4 ways = 8 sets
    lines = _same_set_lines(l1, target_set=3, count=5)
    for i, line in enumerate(lines[:4]):
        l1.access(float(i * 100), line, False)
    assert l1.contains(lines[0])
    # A fifth line in the same set evicts the LRU (the first line).
    l1.access(1000.0, lines[4], False)
    assert not l1.contains(lines[0])
    assert l1.contains(lines[4])


def test_writeback_policy_writes_on_eviction():
    dram = DRAM(MemoryConfig())
    l1 = make_l1(next_level=dram, write_back=True)
    lines = _same_set_lines(l1, target_set=2, count=5)
    l1.access(0.0, lines[0], True)  # write-allocate, dirties the line
    assert l1.stats.write_misses == 1
    writes_before = dram.stats.writes
    for i, line in enumerate(lines[1:], start=1):  # evict the dirty line
        l1.access(float(i * 1000), line, False)
    assert l1.stats.writebacks == 1
    assert dram.stats.writes == writes_before + 1


def test_writethrough_policy_propagates_immediately():
    dram = DRAM(MemoryConfig())
    l1 = make_l1(next_level=dram, write_back=False)
    l1.access(0.0, 0, True)
    assert dram.stats.writes == 1
    # Write-no-allocate: the line must not be resident.
    assert not l1.contains(0)
    assert l1.stats.writebacks == 0


def test_mshr_merges_same_line_misses():
    dram = DRAM(MemoryConfig())
    l1 = make_l1(next_level=dram)
    t1 = l1.access(0.0, 0, False)
    t2 = l1.access(1.0, 0, False)  # same line, while fill in flight
    assert t2 == t1
    assert l1.stats.mshr_merges == 1
    assert dram.stats.reads == 1  # only one fill went out


def test_bank_conflicts_serialize():
    l1 = make_l1(banks=1)
    # Warm two lines, both mapping to the single bank.
    l1.access(0.0, 0, False)
    l1.access(100.0, 1, False)
    base = 1000.0
    t_a = l1.access(base, 0, False)
    t_b = l1.access(base, 1, False)  # same cycle, same bank -> +1
    assert t_b == t_a + 1
    assert l1.stats.bank_wait_cycles >= 1


def test_dram_row_buffer_hits_are_faster():
    cfg = MemoryConfig()
    dram = DRAM(cfg)
    t1 = dram.access(0.0, 0, False)          # row miss
    t2 = dram.access(t1, cfg.dram_channels, False)  # same channel? next line same row?
    assert dram.stats.row_misses >= 1
    # Re-access the exact same line: guaranteed row hit.
    t3 = dram.access(t2, 0, False)
    assert dram.stats.row_hits >= 1
    assert t3 - t2 <= cfg.dram_row_miss_latency


def test_dram_channels_run_in_parallel():
    cfg = MemoryConfig()
    dram = DRAM(cfg)
    done = [dram.access(0.0, ch, False) for ch in range(cfg.dram_channels)]
    # All six channels can overlap: completion times cluster near one
    # row-miss latency rather than stacking.
    assert max(done) < cfg.dram_row_miss_latency + cfg.dram_burst_cycles * cfg.dram_channels


def test_memory_system_word_access():
    ms = MemorySystem(MemoryConfig(), l1_write_back=True)
    t1 = ms.access_word(0.0, 0, False)
    t2 = ms.access_word(t1, 1, False)  # same 128B line -> L1 hit
    assert ms.l1_stats.read_hits == 1
    assert t2 - t1 == ms.config.l1_hit_latency


def test_coalescer_groups_contiguous_warp():
    # 32 consecutive words = 128 bytes = exactly one transaction.
    assert coalesce_word_addresses(range(32)) == [0]
    # Stride-32 words touch 32 distinct lines.
    assert len(coalesce_word_addresses(range(0, 32 * 32, 32))) == 32
    # Unaligned run straddles two lines.
    assert coalesce_word_addresses(range(16, 48)) == [0, 1]


def test_lvc_counts_accesses_and_uses_l2():
    cfg = MemoryConfig()
    ms = MemorySystem(cfg, l1_write_back=True)
    lvc = LiveValueCache(
        size_bytes=64 * 1024, line_bytes=64, ways=4, banks=16,
        hit_latency=4, l2=ms.l2,
    )
    t = lvc.access(0.0, lv_id=0, tid=0, is_write=True)
    assert lvc.writes == 1
    t2 = lvc.access(t, lv_id=0, tid=1, is_write=False)
    assert lvc.reads == 1
    # Neighbouring threads share an LVC line: the read hits.
    assert lvc.stats.read_hits == 1
    # Distinct live values map to distinct lines.
    a = lvc._line_addr(0, 0)
    b = lvc._line_addr(1, 0)
    assert a != b


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 128, 4, 4, 1, None)
