"""Trace overhead: with tracing off, the observability hooks must cost
less than 2 % of simulator wall-clock.

Companion to ``bench_watchdog_overhead.py``: the pathfinder workload
(``scale="small"``, 4096 threads) run through all three machines in
three modes —

* ``tracer=None`` — the default: every hook site reduces to one hoisted
  local ``None``-test per run plus ``if trace is not None`` in the
  loops;
* ``tracer=NULL_TRACER`` — the explicit disabled mode: identical, the
  ``tracer.enabled`` guard folds it to the same ``None`` local;
* ``tracer=Tracer()`` — recording: ring-buffer appends on every BBS
  reconfiguration, block execution, divergence, cache miss and DRAM row
  activation.

Baseline numbers (Python 3.11, this repository's dev container,
warmed up, min-of-3 per side, pathfinder/dynproc_kernel small, all
three machines combined):

=============  ==========  ==========
 mode           combined    vs None
=============  ==========  ==========
 None            4.05 s      —
 NULL_TRACER     4.04 s     -0.5 %
 Tracer()        4.04 s     -0.3 %
=============  ==========  ==========

i.e. the disabled path is below measurement noise (the hook guard is
one local comparison against work dominated by token routing / warp
replay), and even full recording stays within a few percent on this
workload because events fire per block/warp/miss, not per node fire.
``bench_trace_overhead_budget`` enforces the < 2 % disabled-mode
envelope; ``bench_*_traced`` track the recording-mode absolute numbers.
"""

import time

from repro.kernels.registry import make_workload
from repro.obs import NULL_TRACER, Tracer
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

WORKLOAD = "pathfinder/dynproc_kernel"
SCALE = "small"


def _run(cls, tracer):
    w = make_workload(WORKLOAD, SCALE)
    return cls().run(w.kernel, w.memory, w.params, w.n_threads,
                     tracer=tracer)


def bench_vgiw_traced(benchmark):
    result = benchmark(lambda: _run(VGIWCore, Tracer()))
    assert result.trace is not None and len(result.trace) > 0


def bench_fermi_traced(benchmark):
    result = benchmark(lambda: _run(FermiSM, Tracer()))
    assert result.trace is not None and len(result.trace) > 0


def bench_sgmf_traced(benchmark):
    result = benchmark(lambda: _run(SGMFCore, Tracer()))
    assert result.trace is not None and len(result.trace) > 0


def _min_of(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_trace_overhead_budget(benchmark):
    """Disabled-mode paired measurement; enforces the < 2 % budget.

    ``tracer=None`` and ``tracer=NULL_TRACER`` are the two spellings of
    tracing-off; the engines fold both to the same hoisted ``None``
    local, so their paired wall-clock must agree within the 2 % budget
    the API promises (docs/observability.md section 6).  Uses min-of-3
    per side (min is the noise-robust statistic for wall-clock
    micro-comparisons) and compares the *combined* time across all
    three simulators, which is steadier than any single one.
    """
    def paired():
        off = null = 0.0
        for cls in (VGIWCore, FermiSM, SGMFCore):
            _run(cls, None)  # warm up caches/allocator for this machine
            off += _min_of(lambda: _run(cls, None))
            null += _min_of(lambda: _run(cls, NULL_TRACER))
        return off, null

    off, null = benchmark.pedantic(paired, rounds=1, iterations=1)
    overhead = null / off - 1.0
    assert overhead < 0.02, (
        f"disabled tracer costs {overhead:+.1%} "
        f"(None {off * 1e3:.1f} ms, NULL_TRACER {null * 1e3:.1f} ms); "
        f"budget is 2%"
    )
