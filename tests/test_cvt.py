"""Tests for the Control Vector Table and the BBS batch protocol."""

import pytest

from repro.vgiw import (
    ControlVectorTable,
    CVTError,
    batch_popcount,
    iter_batch_tids,
    make_batches,
)


def test_activate_all_sets_every_thread():
    cvt = ControlVectorTable(n_blocks=3, n_threads=70)
    cvt.activate_all(0)
    assert cvt.pending_count(0) == 70
    assert cvt.first_nonempty() == 0
    # 70 threads span two 64-bit words.
    assert cvt.stats.word_writes == 2


def test_or_batch_and_pop_roundtrip():
    cvt = ControlVectorTable(n_blocks=2, n_threads=128)
    cvt.or_batch(1, 0, 0b1010)
    cvt.or_batch(1, 64, 0b1)
    batches = list(cvt.pop_batches(1))
    assert batches == [(0, 0b1010), (64, 0b1)]
    # Read-and-reset: the vector is now empty.
    assert cvt.is_empty(1)
    assert list(cvt.pop_batches(1)) == []


def test_or_merges_multiple_control_flows():
    cvt = ControlVectorTable(n_blocks=1, n_threads=64)
    cvt.or_batch(0, 0, 0b0011)
    cvt.or_batch(0, 0, 0b0110)  # arriving from a different path
    assert cvt.pending_count(0) == 3


def test_first_nonempty_is_smallest_id():
    cvt = ControlVectorTable(n_blocks=5, n_threads=64)
    cvt.or_batch(3, 0, 1)
    cvt.or_batch(1, 0, 2)
    assert cvt.first_nonempty() == 1


def test_invariant_detects_double_registration():
    cvt = ControlVectorTable(n_blocks=2, n_threads=64)
    cvt.or_batch(0, 0, 1)
    cvt.or_batch(1, 0, 1)  # same thread in two vectors
    with pytest.raises(CVTError, match="multiple block vectors"):
        cvt.check_invariant()


def test_invariant_accepts_disjoint_vectors():
    cvt = ControlVectorTable(n_blocks=2, n_threads=64)
    cvt.or_batch(0, 0, 0b0101)
    cvt.or_batch(1, 0, 0b1010)
    cvt.check_invariant()


def test_unaligned_batch_rejected():
    cvt = ControlVectorTable(n_blocks=1, n_threads=128)
    with pytest.raises(CVTError, match="word-aligned"):
        cvt.or_batch(0, 3, 1)


def test_wide_bitmap_rejected():
    cvt = ControlVectorTable(n_blocks=1, n_threads=256)
    with pytest.raises(CVTError, match="wider"):
        cvt.or_batch(0, 0, 1 << 64)


def test_out_of_range_thread_rejected():
    cvt = ControlVectorTable(n_blocks=1, n_threads=10)
    with pytest.raises(CVTError, match="out of range"):
        cvt.or_batch(0, 0, 1 << 12)


def test_iter_batch_tids():
    assert list(iter_batch_tids(64, 0b1011)) == [64, 65, 67]
    assert list(iter_batch_tids(0, 0)) == []


def test_make_batches_word_aligned():
    batches = make_batches([3, 70, 65, 64])
    assert batches == [(0, 1 << 3), (64, 0b1000011)]
    # Round trip.
    tids = sorted(t for base, bm in batches for t in iter_batch_tids(base, bm))
    assert tids == [3, 64, 65, 70]


def test_batch_popcount():
    assert batch_popcount(0b101101) == 4
