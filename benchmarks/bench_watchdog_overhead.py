"""Watchdog overhead: the armed forward-progress watchdog must cost
less than 5 % of simulator wall-clock.

Companion to ``bench_simulator_performance.py``: the same Figure 1a
workload and thread count, run with the watchdog disarmed (the default,
a single attribute test per check site) and armed with generous budgets
(two float comparisons per check site; the snapshot builder only runs
when the watchdog actually fires, so it never executes here).

Baseline numbers (Python 3.11, this repository's dev container,
min-of-5, 512 threads):

======  ============  ===========  =========
 sim     disarmed      armed        overhead
======  ============  ===========  =========
 vgiw    111.9 ms      111.9 ms     -0.0 %
 fermi    11.0 ms       10.7 ms     -2.6 %
 sgmf    103.7 ms      103.7 ms     +0.0 %
======  ============  ===========  =========

i.e. the check is below measurement noise on all three machines — the
per-event work is dominated by token routing / warp replay, and the
VGIW/SGMF check sites run per *block execution* / *thread*, not per
node fire.  ``bench_watchdog_overhead_budget`` enforces the < 5 %
envelope; the per-simulator benchmarks track the armed absolute numbers
alongside ``bench_simulator_performance.py``'s disarmed ones.
"""

import time

from repro.kernels import make_fig1_workload
from repro.resilience import WatchdogConfig
from repro.sgmf import SGMFCore
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

N_THREADS = 512

#: generous budgets: armed (both checks live) but never firing.
ARMED = WatchdogConfig(max_cycles=1e12, stall_cycles=1e12)


def _run_vgiw(watchdog):
    kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
    return VGIWCore().run(kernel, mem, params, N_THREADS, watchdog=watchdog)


def _run_fermi(watchdog):
    kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
    return FermiSM().run(kernel, mem, params, N_THREADS, watchdog=watchdog)


def _run_sgmf(watchdog):
    kernel, mem, params = make_fig1_workload(n_threads=N_THREADS)
    return SGMFCore().run(kernel, mem, params, N_THREADS, watchdog=watchdog)


def bench_vgiw_watchdog_armed(benchmark):
    result = benchmark(lambda: _run_vgiw(ARMED))
    assert result.n_threads == N_THREADS


def bench_fermi_watchdog_armed(benchmark):
    result = benchmark(lambda: _run_fermi(ARMED))
    assert result.sm.warps_launched == N_THREADS // 32


def bench_sgmf_watchdog_armed(benchmark):
    result = benchmark(lambda: _run_sgmf(ARMED))
    assert result.n_threads == N_THREADS


def _min_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_watchdog_overhead_budget(benchmark):
    """Armed-vs-disarmed paired measurement; enforces the < 5 % budget.

    Uses min-of-5 on each side (min is the noise-robust statistic for
    wall-clock micro-comparisons) and checks the *combined* overhead
    across all three simulators, which is steadier than any single one.
    """
    def paired():
        disarmed = armed = 0.0
        for run in (_run_vgiw, _run_fermi, _run_sgmf):
            disarmed += _min_of(lambda: run(None), reps=3)
            armed += _min_of(lambda: run(ARMED), reps=3)
        return disarmed, armed

    disarmed, armed = benchmark.pedantic(paired, rounds=1, iterations=1)
    overhead = armed / disarmed - 1.0
    assert overhead < 0.05, (
        f"armed watchdog costs {overhead:+.1%} "
        f"(disarmed {disarmed * 1e3:.1f} ms, armed {armed * 1e3:.1f} ms); "
        f"budget is 5%"
    )
