"""Delta-debugging reducer for failing fuzz cases.

Given a kernel (or a whole :class:`~repro.fuzz.generate.FuzzCase`) and
an *interestingness predicate* — "does this input still exhibit the
bug?" — the reducer greedily shrinks the input while keeping the
predicate true:

1. **threads** — try the smallest launch widths first (a one-thread
   reproducer rules out every cross-thread interaction at a glance);
2. **blocks** — remove one basic block at a time, re-routing edges
   through it (a ``jmp`` block is spliced out, a ``ret`` block turns
   its predecessors' edges into returns, a ``br`` block collapses onto
   its true edge), and collapse conditional branches to one side;
3. **instructions** — classic ddmin over each block's instruction
   list (delete contiguous chunks, halving the chunk size down to
   single instructions), then a second sweep replacing each surviving
   instruction with ``mov dst, #0`` of the matching dtype (which often
   unlocks further chunk deletions);
4. **clean-up** — :func:`~repro.compiler.optimize.eliminate_dead_code`
   between rounds, accepted only if the predicate still holds (the bug
   might live in DCE itself).

Every candidate is validated with
:func:`~repro.ir.validate.validate_kernel` before the predicate runs,
so transformations that orphan a register definition are simply
skipped.  The loop repeats until a full round changes nothing (or
``max_rounds`` is hit), which makes the result 1-minimal with respect
to the transformation vocabulary.  All candidate orders are
deterministic, so reduction of the same case with the same predicate
always yields the same reproducer.

The predicate is arbitrary — the campaign passes "the oracle still
reports a divergence for the same engine and status", the tests pass
synthetic bug detectors — so the reducer never needs to know *why* a
case is interesting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.compiler.optimize import eliminate_dead_code
from repro.fuzz.generate import FuzzCase
from repro.ir.block import BasicBlock
from repro.ir.instr import Instr, Op, Terminator, TermKind
from repro.ir.kernel import Kernel
from repro.ir.types import DType, Imm
from repro.ir.validate import validate_kernel
from repro.resilience.errors import ReproError

__all__ = ["reduce_case", "reduce_kernel"]

KernelPredicate = Callable[[Kernel], bool]
CasePredicate = Callable[[FuzzCase], bool]


# ----------------------------------------------------------------------
# Kernel surgery helpers (all pure: inputs are never mutated)
# ----------------------------------------------------------------------
def _copy_block(block: BasicBlock) -> BasicBlock:
    return BasicBlock(block.name, list(block.instrs), block.terminator)


def _rebuild(kernel: Kernel, blocks: Dict[str, BasicBlock]) -> Kernel:
    return Kernel(
        name=kernel.name,
        params=list(kernel.params),
        blocks=blocks,
        entry=kernel.entry,
        param_dtypes=dict(kernel.param_dtypes),
    )


def _retarget(term: Terminator, removed: str,
              replacement: Optional[str]) -> Terminator:
    """Rewrite ``term`` so it no longer targets ``removed``.

    ``replacement`` of ``None`` means the removed block returned: edges
    into it become returns (``jmp`` → ``ret``; a ``br`` falls through
    to its other side, or returns when both sides are gone).
    """
    if term.kind is TermKind.RET:
        return term
    if term.kind is TermKind.JMP:
        if term.true_target != removed:
            return term
        return (Terminator.ret() if replacement is None
                else Terminator.jmp(replacement))
    # BR
    t, f = term.true_target, term.false_target
    if removed not in (t, f):
        return term
    if replacement is not None:
        t = replacement if t == removed else t
        f = replacement if f == removed else f
        return Terminator.jmp(t) if t == f else Terminator.br(term.cond, t, f)
    if t == removed and f == removed:
        return Terminator.ret()
    return Terminator.jmp(f if t == removed else t)


def _without_block(kernel: Kernel, name: str) -> Optional[Kernel]:
    """``kernel`` with block ``name`` removed and edges re-routed."""
    if name == kernel.entry:
        return None
    victim = kernel.blocks[name].terminator
    if victim.kind is TermKind.RET:
        replacement: Optional[str] = None
    else:  # JMP or BR: splice through to the (true) successor
        replacement = victim.true_target
        if replacement == name:  # self-loop; nothing to splice to
            return None
    blocks: Dict[str, BasicBlock] = {}
    for bname, block in kernel.blocks.items():
        if bname == name:
            continue
        new = _copy_block(block)
        new.terminator = _retarget(block.terminator, name, replacement)
        blocks[bname] = new
    return _prune_unreachable(_rebuild(kernel, blocks))


def _prune_unreachable(kernel: Kernel) -> Kernel:
    """Drop blocks no longer reachable from the entry (the validator
    rejects them, and edge rewiring routinely orphans whole regions)."""
    seen = {kernel.entry}
    stack = [kernel.entry]
    while stack:
        for succ in kernel.blocks[stack.pop()].successors():
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    if len(seen) == len(kernel.blocks):
        return kernel
    return _rebuild(
        kernel, {b: blk for b, blk in kernel.blocks.items() if b in seen}
    )


def _with_terminator(kernel: Kernel, name: str, term: Terminator) -> Kernel:
    blocks = {b: _copy_block(blk) for b, blk in kernel.blocks.items()}
    blocks[name].terminator = term
    return _prune_unreachable(_rebuild(kernel, blocks))


def _without_instrs(kernel: Kernel, name: str, start: int, count: int) -> Kernel:
    blocks = {b: _copy_block(blk) for b, blk in kernel.blocks.items()}
    instrs = blocks[name].instrs
    blocks[name].instrs = instrs[:start] + instrs[start + count:]
    return _rebuild(kernel, blocks)


_ZERO = {
    DType.INT: Imm(0, DType.INT),
    DType.FLOAT: Imm(0.0, DType.FLOAT),
    DType.PRED: Imm(False, DType.PRED),
}


def _with_zeroed_instr(kernel: Kernel, name: str, index: int) -> Optional[Kernel]:
    instr = kernel.blocks[name].instrs[index]
    if instr.dst is None:
        return None  # stores are deleted, not zeroed
    dtype = instr.dtype or DType.INT
    zero = _ZERO[dtype]
    if instr.op is Op.MOV and instr.srcs == (zero,):
        return None  # already minimal
    blocks = {b: _copy_block(blk) for b, blk in kernel.blocks.items()}
    instrs = list(blocks[name].instrs)
    instrs[index] = Instr(Op.MOV, instr.dst, (zero,), dtype)
    blocks[name].instrs = instrs
    return _rebuild(kernel, blocks)


# ----------------------------------------------------------------------
# Reduction passes
# ----------------------------------------------------------------------
def _interesting(kernel: Kernel, predicate: KernelPredicate) -> bool:
    """Validate, then consult the predicate; broken candidates and
    predicate-raising candidates count as uninteresting."""
    try:
        validate_kernel(kernel)
        return bool(predicate(kernel))
    except ReproError:
        return False


def _pass_blocks(kernel: Kernel, predicate: KernelPredicate) -> Kernel:
    changed = True
    while changed:
        changed = False
        for name in list(kernel.blocks):
            candidate = _without_block(kernel, name)
            if candidate is not None and _interesting(candidate, predicate):
                kernel = candidate
                changed = True
                break  # block list changed; restart the scan
    # Collapse conditional branches onto one side.
    for name in list(kernel.blocks):
        if name not in kernel.blocks:  # pruned by an earlier collapse
            continue
        term = kernel.blocks[name].terminator
        if term.kind is not TermKind.BR:
            continue
        for target in (term.true_target, term.false_target):
            candidate = _with_terminator(kernel, name, Terminator.jmp(target))
            if _interesting(candidate, predicate):
                kernel = candidate
                break
    return kernel


def _pass_instrs(kernel: Kernel, predicate: KernelPredicate) -> Kernel:
    """ddmin chunk deletion over every block, then zero-replacement."""
    for name in list(kernel.blocks):
        n = len(kernel.blocks[name].instrs)
        chunk = max(1, n // 2)
        while chunk >= 1:
            i = 0
            while i < len(kernel.blocks[name].instrs):
                count = min(chunk, len(kernel.blocks[name].instrs) - i)
                candidate = _without_instrs(kernel, name, i, count)
                if _interesting(candidate, predicate):
                    kernel = candidate  # same index now holds new instrs
                else:
                    i += chunk
            if chunk == 1:
                break
            chunk //= 2
    for name in list(kernel.blocks):
        i = 0
        while i < len(kernel.blocks[name].instrs):
            candidate = _with_zeroed_instr(kernel, name, i)
            if candidate is not None and _interesting(candidate, predicate):
                kernel = candidate
            i += 1
    return kernel


def _fingerprint(kernel: Kernel) -> str:
    from repro.ir.text import kernel_to_text

    return kernel_to_text(kernel)


def reduce_kernel(kernel: Kernel, predicate: KernelPredicate,
                  max_rounds: int = 10) -> Kernel:
    """Shrink ``kernel`` while ``predicate`` keeps returning True.

    ``predicate(kernel)`` must be True for the input itself (otherwise
    the input is returned unchanged) and is re-evaluated for every
    candidate; the returned kernel is the smallest interesting kernel
    the transformation vocabulary reaches, and is always valid.
    """
    if not _interesting(kernel, predicate):
        return kernel
    for _ in range(max_rounds):
        before = _fingerprint(kernel)
        kernel = _pass_blocks(kernel, predicate)
        kernel = _pass_instrs(kernel, predicate)
        cleaned = eliminate_dead_code(kernel)
        if _fingerprint(cleaned) != before and _interesting(cleaned, predicate):
            kernel = cleaned
        if _fingerprint(kernel) == before:
            break
    return kernel


def _thread_candidates(n: int) -> List[int]:
    out: List[int] = []
    for cand in (1, 2, 3, 4, n // 2):
        if 0 < cand < n and cand not in out:
            out.append(cand)
    return out


def reduce_case(case: FuzzCase, predicate: CasePredicate,
                max_rounds: int = 10) -> FuzzCase:
    """Shrink a whole fuzz case: launch width first, then the kernel.

    ``predicate(case)`` is the case-level interestingness test (the
    campaign closes it over the oracle).  Thread reduction is retried
    after kernel reduction — a smaller kernel often reproduces with
    fewer threads than the original needed.
    """
    def case_ok(c: FuzzCase) -> bool:
        try:
            return bool(predicate(c))
        except ReproError:
            return False

    if not case_ok(case):
        return case

    def shrink_threads(c: FuzzCase) -> FuzzCase:
        for n in _thread_candidates(c.n_threads):
            smaller = c.with_threads(n)
            if case_ok(smaller):
                return smaller
        return c

    case = shrink_threads(case)
    kernel = reduce_kernel(
        case.kernel,
        lambda k: case_ok(case.with_kernel(k)),
        max_rounds=max_rounds,
    )
    case = case.with_kernel(kernel)
    return shrink_threads(case)
