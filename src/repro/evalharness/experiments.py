"""Experiment generators: one function per table/figure of the paper.

Every function takes the suite results from
:func:`repro.evalharness.runner.run_suite` and returns an
:class:`~repro.evalharness.tables.ExperimentTable` whose rows mirror what
the paper's table/figure reports.  Paper reference values are embedded in
the notes so EXPERIMENTS.md can show paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.config import FabricSpec, FermiConfig, MemoryConfig, VGIWConfig
from repro.evalharness.runner import KernelRun
from repro.evalharness.tables import ExperimentTable, arithmean, geomean
from repro.kernels.registry import TABLE2
from repro.obs import SHARED_COUNTERS, SHARED_GAUGES, Metrics


def table1_configuration() -> ExperimentTable:
    """Paper Table 1: VGIW system configuration."""
    cfg = VGIWConfig()
    spec: FabricSpec = cfg.fabric
    mem: MemoryConfig = cfg.memory
    fermi = FermiConfig()
    t = ExperimentTable(
        "Table 1", "VGIW system configuration",
        ["Parameter", "Value"],
    )
    t.add("VGIW core", f"{spec.total_units} interconnected func./LDST/control units")
    counts = {k.value: v for k, v in spec.counts.items()}
    t.add("Functional units",
          f"{counts['compute']} combined FPU-ALU, {counts['special']} special compute")
    t.add("Load/Store units",
          f"{counts['lvu']} live value units, {counts['ldst']} regular LDST")
    t.add("Control units",
          f"{counts['sju']} split/join units, {counts['cvu']} control vector units")
    t.add("Frequency [GHz]",
          f"core {cfg.core_ghz}, L2 {cfg.l2_ghz}, DRAM {cfg.dram_ghz}")
    t.add("L1", f"{mem.l1_size_bytes // 1024}KB, {mem.l1_banks} banks, "
                f"{mem.l1_line_bytes}B/line, {mem.l1_ways}-way")
    t.add("L2", f"{mem.l2_size_bytes // 1024}KB, {mem.l2_banks} banks, "
                f"{mem.l2_line_bytes}B/line, {mem.l2_ways}-way")
    t.add("GDDR5 DRAM",
          f"{mem.dram_banks_per_channel} banks, {mem.dram_channels} channels")
    ratio = fermi.register_file_bytes // cfg.lvc_size_bytes
    t.add("LVC", f"{cfg.lvc_size_bytes // 1024}KB, {cfg.lvc_banks} banks "
                 f"({ratio}x smaller than the "
                 f"{fermi.register_file_bytes // 1024}KB Fermi RF; the paper "
                 f"says 4x)")
    t.add("Reconfiguration", f"{spec.config_cycles} cycles")
    t.notes.append("paper Table 1: 108 units = 32 FPU-ALU + 12 SCU + 16 LVU "
                   "+ 16 LDST + 16 SJU + 16 CVU; reconfiguration 34 cycles")
    return t


def table2_benchmarks(runs: Dict[str, KernelRun] = None) -> ExperimentTable:
    """Paper Table 2: the benchmark suite (with our block counts)."""
    t = ExperimentTable(
        "Table 2", "Benchmark suite",
        ["Application", "Domain", "Kernel", "Paper #BB", "Ours #BB",
         "Threads"],
    )
    for e in TABLE2:
        run = runs.get(e.name) if runs else None
        t.add(
            e.app, e.domain, e.name.split("/")[1], e.paper_blocks,
            run.n_blocks if run else None,
            run.n_threads if run else None,
        )
    t.notes.append("block counts differ slightly: our structured builder "
                   "emits explicit merge blocks and our barrier-free "
                   "substitutions flatten some Rodinia tiling loops")
    return t


def fig3_lvc_vs_rf(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper Figure 3: LVC accesses as a fraction of GPGPU RF accesses."""
    t = ExperimentTable(
        "Figure 3", "LVC accesses / GPGPU register file accesses",
        ["Kernel", "LVC accesses", "RF accesses", "Ratio"],
    )
    ratios: List[float] = []
    for name, run in runs.items():
        rf = run.fermi.sm.rf_accesses
        lvc = run.vgiw.lvc_bank_accesses
        ratio = lvc / rf if rf else 0.0
        ratios.append(ratio)
        t.add(name, lvc, rf, ratio)
    t.add("MEAN", None, None, arithmean(ratios))
    t.notes.append("paper: the LVC is accessed on average almost 10x less "
                   "frequently than a GPGPU register file")
    return t


def fig7_speedup_vs_fermi(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper Figure 7: speedup of VGIW over a Fermi SM."""
    t = ExperimentTable(
        "Figure 7", "Speedup of VGIW over Fermi",
        ["Kernel", "Fermi cycles", "VGIW cycles", "Speedup"],
    )
    sps: List[float] = []
    for name, run in runs.items():
        sp = run.speedup_vs_fermi
        sps.append(sp)
        t.add(name, run.fermi.cycles, run.vgiw.cycles, sp)
    t.add("GEOMEAN", None, None, geomean(sps))
    t.add("ARITHMEAN", None, None, arithmean(sps))
    t.notes.append("paper: 0.9x (slowdown) to 11x, average over 3x")
    return t


def fig8_speedup_vs_sgmf(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper Figure 8: speedup of VGIW over SGMF (mappable subset)."""
    t = ExperimentTable(
        "Figure 8", "Speedup of VGIW over SGMF (SGMF-mappable kernels)",
        ["Kernel", "SGMF cycles", "VGIW cycles", "Speedup"],
    )
    sps: List[float] = []
    unmappable: List[str] = []
    for name, run in runs.items():
        if run.sgmf is None:
            unmappable.append(name)
            continue
        sp = run.speedup_vs_sgmf
        sps.append(sp)
        t.add(name, run.sgmf.cycles, run.vgiw.cycles, sp)
    t.add("GEOMEAN", None, None, geomean(sps))
    t.add("ARITHMEAN", None, None, arithmean(sps))
    t.notes.append("paper: 0.4x to 3.1x, average better than 1.45x; "
                   "comparison restricted to kernels that map onto SGMF")
    t.notes.append(f"unmappable on SGMF here: {', '.join(unmappable) or 'none'}")
    return t


def fig9_energy_vs_fermi(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper Figure 9: energy efficiency of VGIW over Fermi."""
    t = ExperimentTable(
        "Figure 9", "Energy efficiency of a VGIW core over a Fermi SM",
        ["Kernel", "Fermi energy [uJ]", "VGIW energy [uJ]", "Efficiency"],
    )
    effs: List[float] = []
    for name, run in runs.items():
        eff = run.efficiency_vs_fermi("system")
        effs.append(eff)
        t.add(name, run.fermi_energy.system / 1e6,
              run.vgiw_energy.system / 1e6, eff)
    t.add("GEOMEAN", None, None, geomean(effs))
    t.add("ARITHMEAN", None, None, arithmean(effs))
    t.notes.append("paper: 0.7x to 7x, average 1.75x")
    return t


def fig10_energy_levels(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper Figure 10: VGIW/Fermi energy efficiency at system, die, and
    core levels (averaged over the suite)."""
    t = ExperimentTable(
        "Figure 10", "Energy efficiency of VGIW over Fermi by level",
        ["Kernel", "System", "Die", "Core"],
    )
    per_level: Dict[str, List[float]] = {"system": [], "die": [], "core": []}
    for name, run in runs.items():
        row = [run.efficiency_vs_fermi(level) for level in ("system", "die", "core")]
        for level, v in zip(("system", "die", "core"), row):
            per_level[level].append(v)
        t.add(name, *row)
    t.add("GEOMEAN", *(geomean(per_level[l]) for l in ("system", "die", "core")))
    t.notes.append("paper: the VGIW advantage is attributed to the compute "
                   "engine — core-level efficiency exceeds die-level, which "
                   "exceeds system-level")
    return t


def fig11_energy_vs_sgmf(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper Figure 11: energy efficiency of VGIW over SGMF (subset)."""
    t = ExperimentTable(
        "Figure 11", "Energy efficiency of VGIW over SGMF",
        ["Kernel", "SGMF energy [uJ]", "VGIW energy [uJ]", "Efficiency"],
    )
    effs: List[float] = []
    for name, run in runs.items():
        if run.sgmf_energy is None:
            continue
        eff = run.efficiency_vs_sgmf("system")
        effs.append(eff)
        t.add(name, run.sgmf_energy.system / 1e6,
              run.vgiw_energy.system / 1e6, eff)
    t.add("GEOMEAN", None, None, geomean(effs))
    t.add("ARITHMEAN", None, None, arithmean(effs))
    t.notes.append("paper: average 1.33x (~25%), varying by kernel; SGMF "
                   "excels at small kernels with little branch divergence")
    return t


def sec32_reconfiguration_overhead(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Paper section 3.2: configuration overhead averages 0.18% of runtime
    with a median lower than 0.1%."""
    t = ExperimentTable(
        "Section 3.2", "MT-CGRF reconfiguration overhead",
        ["Kernel", "Reconfigurations", "Config cycles", "Total cycles",
         "Overhead %"],
    )
    overheads: List[float] = []
    for name, run in runs.items():
        ov = 100.0 * run.vgiw.config_overhead
        overheads.append(ov)
        t.add(name, run.vgiw.bbs.reconfigurations, run.vgiw.bbs.config_cycles,
              run.vgiw.cycles, ov)
    overheads.sort()
    if overheads:  # an all-degraded sweep still renders a (bare) table
        t.add("MEAN", None, None, None, arithmean(overheads))
        t.add("MEDIAN", None, None, None,
              overheads[len(overheads) // 2])
    t.notes.append("paper: total configuration overhead averaged 0.18% of "
                   "runtime, median below 0.1% (at full-scale thread counts; "
                   "scaled-down runs amortise less)")
    return t


def workload_characterization(runs: Dict[str, KernelRun]) -> ExperimentTable:
    """Beyond the paper: per-kernel characteristics that explain the
    figures — instruction mix, memory intensity, SIMT divergence, and
    VGIW block-visit behaviour."""
    t = ExperimentTable(
        "Characterization", "Workload characteristics",
        ["Kernel", "Warp instrs", "Mem %", "SFU %", "SIMD eff",
         "Divergences", "Block execs", "Replicas max", "Fabric util %",
         "Regs/thread"],
    )
    spec = FabricSpec()
    for name, run in runs.items():
        sm = run.fermi.sm
        total = max(1, sm.instructions_issued)
        max_reps = (
            max(rec.replicas for rec in run.vgiw.block_profile)
            if run.vgiw.block_profile else None
        )
        util = run.vgiw.fabric.utilization(run.vgiw.cycles, spec)
        t.add(
            name,
            sm.instructions_issued,
            100.0 * sm.mem_instructions / total,
            100.0 * sm.sfu_instructions / total,
            sm.simd_efficiency,
            sm.divergences,
            run.vgiw.bbs.blocks_executed,
            max_reps,
            100.0 * util["overall"],
            sm.register_pressure or None,
        )
    t.notes.append("the paper's narrative in one table: high Mem% kernels "
                   "are where VGIW's uncoalesced accesses hurt; low SIMD "
                   "efficiency is where control flow coalescing helps")
    return t


def degraded_kernels(failures: Dict) -> ExperimentTable:
    """Degraded rows: kernels the fault-isolating runner excluded.

    ``failures`` is the ``SuiteResult.failures`` mapping (name →
    :class:`repro.resilience.KernelFailure`).  Every row names the final
    error, the number of bounded-retry attempts consumed, and how many
    faults the injector actually landed across those attempts; the full
    structured logs ride in the JSON archive and the report appendix.
    """
    t = ExperimentTable(
        "Degraded", "Kernels excluded by fault isolation",
        ["Kernel", "Error", "Attempts", "Faults", "Message"],
    )
    for name in sorted(failures):
        f = failures[name]
        n_faults = sum(len(a.fault_log) for a in f.attempts)
        message = f.message if len(f.message) <= 72 else f.message[:69] + "..."
        t.add(name, f.error_type, f.n_attempts, n_faults, message)
    t.notes.append(
        "each kernel above exhausted its retry budget; healthy rows in "
        "every other table are unaffected (docs/resilience.md)"
    )
    return t


def metrics_table(metrics: Metrics) -> ExperimentTable:
    """Metrics column group: the shared counter namespace per engine.

    ``metrics`` is the :class:`repro.obs.Metrics` registry threaded
    through the sweep (``--metrics`` on the CLI).  Rows are the shared
    cross-engine names (:data:`repro.obs.SHARED_GAUGES` then
    :data:`repro.obs.SHARED_COUNTERS`); columns are the engine scopes
    that recorded anything.  Counters accumulate over every kernel in
    the sweep; gauges hold the most recent run's value.
    """
    engines = [s for s in ("fermi", "vgiw", "sgmf", "interp")
               if s in metrics.scope_names()]
    t = ExperimentTable(
        "Metrics", "Shared metric namespace across engines",
        ["Metric"] + [e.capitalize() for e in engines],
    )
    for name in tuple(SHARED_GAUGES) + tuple(SHARED_COUNTERS):
        t.add(name, *(metrics.value(f"{e}/{name}") for e in engines))
    extras = sum(
        1 for e in engines
        for n in metrics.names(f"{e}/")
        if n[len(e) + 1:] not in SHARED_GAUGES + SHARED_COUNTERS
    )
    t.notes.append(
        "counters accumulate across the whole sweep; gauges (run.cycles) "
        "show the most recent kernel only.  Engine-specific metrics "
        f"({extras} more names) ride in the JSON/`Metrics.format()` dump "
        "(docs/observability.md)"
    )
    if "compile" in metrics.scope_names():
        hits = metrics.value("compile/cache.hits")
        misses = metrics.value("compile/cache.misses")
        disk = metrics.value("compile/cache.disk_hits")
        t.notes.append(
            f"compile cache: {hits} hits / {misses} misses "
            f"({disk} from the --cache-dir disk tier; "
            "docs/performance.md)"
        )
    return t


ALL_EXPERIMENTS = {
    "table1": table1_configuration,
    "table2": table2_benchmarks,
    "fig3": fig3_lvc_vs_rf,
    "fig7": fig7_speedup_vs_fermi,
    "fig8": fig8_speedup_vs_sgmf,
    "fig9": fig9_energy_vs_fermi,
    "fig10": fig10_energy_levels,
    "fig11": fig11_energy_vs_sgmf,
    "sec32": sec32_reconfiguration_overhead,
    "characterization": workload_characterization,
}
