"""Result cache: warm serve streams replay instead of re-simulating.

The result-cache headline claim (``docs/serving.md``): replaying a
seeded request stream against a service whose content-addressed result
cache was populated by the identical cold stream answers **>= 5x**
faster — every warm response arrives at admission with status
``"cached"`` and a digest equal to its cold counterpart, so the win is
pure memoization, never a different answer.

Two gates:

* ``bench_resultcache_committed_record`` — the measured record in
  ``BENCH_simulator_performance.json`` (key ``"resultcache"``) clears
  the floor and its digests were byte-identical;
* ``bench_resultcache_live_warm_identity`` — a live (cheap,
  ``tiny``-scale) cold/warm pair reproduces the contract end to end:
  warm statuses all ``"cached"``, digests equal, zero extra batches.

Re-measure and print a fresh record with::

    PYTHONPATH=src python benchmarks/bench_result_cache.py --remeasure
"""

import json
import os
import tempfile

from repro.evalharness import RunOptions
from repro.serve import ExecutionService, LoadGen

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(
    os.path.dirname(_HERE), "BENCH_simulator_performance.json"
)

#: The measured stream (same shape as bench_serve_throughput's).
STREAM_KERNELS = ("nn/euclid", "gaussian/Fan1", "hotspot/hotspot_kernel")
N_REQUESTS = 40
SEED = 0
WORKERS = 2
CONCURRENCY = 16

#: Acceptance floor: warm (cache-hit) stream wall-clock vs. cold.
MIN_WARM_SPEEDUP = 5.0


def load_baseline():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def _stream_pair(scale: str, n_requests: int, concurrency: int):
    """Run the seeded stream cold then warm against one service with a
    fresh result-cache directory; returns both LoadReports + stats."""
    options = RunOptions(scale=scale)
    gen = LoadGen(list(STREAM_KERNELS), n_requests=n_requests,
                  options=options, seed=SEED, mode="closed",
                  concurrency=concurrency)
    with tempfile.TemporaryDirectory() as cache_dir:
        with ExecutionService(workers=WORKERS,
                              result_cache_dir=cache_dir) as svc:
            cold = gen.run(svc)
            warm = gen.run(svc)
            stats = svc.stats()
    return cold, warm, stats


# ----------------------------------------------------------------------
# Gate 1: the committed record
# ----------------------------------------------------------------------
def bench_resultcache_committed_record():
    """The recorded warm-stream measurement clears the 5x floor."""
    doc = load_baseline()
    record = doc["resultcache"]["record"]
    floor = doc["resultcache"]["floors"]["speedup_warm"]
    assert floor >= MIN_WARM_SPEEDUP
    speedup = record["cold_s"] / record["warm_s"]
    assert speedup >= floor, (
        f"warm-stream speedup {speedup:.2f}x below the {floor}x floor"
    )
    assert abs(record["speedup_warm"] - speedup) < 0.1 * speedup
    assert record["golden"] == "byte-identical"
    assert record["warm_statuses"] == {"cached": record["requests"]}


# ----------------------------------------------------------------------
# Gate 2: live identity (cheap: tiny scale, small stream)
# ----------------------------------------------------------------------
def bench_resultcache_live_warm_identity():
    """A live warm replay is all-``cached`` with cold-equal digests."""
    cold, warm, stats = _stream_pair("tiny", n_requests=8, concurrency=4)
    # The cold stream itself may already hit entries stored by its own
    # earlier batches (which only makes the cold denominator faster).
    assert all(r.status in ("ok", "cached") for r in cold.responses)
    assert any(r.status == "ok" for r in cold.responses)
    assert all(r.status == "cached" for r in warm.responses)
    assert ([r.digest for r in warm.responses]
            == [r.digest for r in cold.responses])
    # The whole warm stream (plus any intra-cold repeats) was answered
    # at admission by the cache.
    assert stats["requests"]["cached"] >= 8
    assert stats["result_cache"]["hits"] >= 8
    assert warm.wall_s < cold.wall_s


# ----------------------------------------------------------------------
# --remeasure: time both streams and print a fresh record
# ----------------------------------------------------------------------
def _remeasure() -> dict:
    import multiprocessing
    import platform
    import time

    cold, warm, stats = _stream_pair("small", n_requests=N_REQUESTS,
                                     concurrency=CONCURRENCY)
    identical = ([r.digest for r in warm.responses]
                 == [r.digest for r in cold.responses])
    # Repeat requests late in the cold stream may already be cache
    # hits; that only *shrinks* cold_s, so the speedup is conservative.
    assert all(r.status in ("ok", "cached") for r in cold.responses)
    warm_statuses = warm.status_counts
    return {
        "label": "remeasure",
        "date": time.strftime("%Y-%m-%d"),
        "host": (f"{multiprocessing.cpu_count()} cores, "
                 f"python {platform.python_version()}"),
        "requests": N_REQUESTS,
        "kernels": list(STREAM_KERNELS),
        "scale": "small",
        "workers": WORKERS,
        "concurrency": CONCURRENCY,
        "cold_statuses": cold.status_counts,
        "cold_s": round(cold.wall_s, 3),
        "warm_s": round(warm.wall_s, 3),
        "speedup_warm": round(cold.wall_s / warm.wall_s, 1),
        "warm_statuses": warm_statuses,
        "warm_latency_total_s": {
            k: round(v, 5)
            for k, v in warm.latency("total_s").summary().items()
        },
        "result_cache": stats["result_cache"],
        "golden": "byte-identical" if identical else "DIVERGED",
    }


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser()
    ap.add_argument("--remeasure", action="store_true",
                    help="time the seeded stream cold and warm against "
                         "a result-cached service; print a record for "
                         "the \"resultcache\" section of "
                         "BENCH_simulator_performance.json")
    args = ap.parse_args()
    if args.remeasure:
        print(json.dumps(_remeasure(), indent=2))
    else:
        ap.error("nothing to do (did you mean --remeasure, or "
                 "`pytest benchmarks/bench_result_cache.py`?)")
