"""Differential oracle: golden interpreter vs. every timing engine.

The oracle takes one :class:`~repro.fuzz.generate.FuzzCase`, runs the
*raw* (unoptimised) kernel through the reference interpreter to obtain
the golden final memory image, then runs:

* the interpreter again on the **optimised** kernel — a divergence here
  is a compiler miscompile and is attributed to the pseudo-engine
  ``"optimizer"`` rather than to any machine;
* each registered timing engine (``fermi``, ``vgiw``, ``sgmf`` by
  default) on the optimised kernel (SGMF receives the rolled,
  ``unroll=False`` variant, matching the evaluation harness).

Each engine produces one :class:`EngineOutcome` whose ``status`` is a
point in the classification lattice::

    ok             final memory identical to golden (NaN == NaN)
    mismatch       some words differ and were written by the engine
    missing-store  every diverged word still holds its *initial* value
                   (the engine dropped stores rather than computing
                   wrong values)
    compile-error  CompileError from the optimisation/compile flow
    unmappable     SGMFUnmappableError — benign capacity limit, not a
                   semantics bug
    hang           SimulationHangError from the forward-progress
                   watchdog (deadlock/livelock)
    runtime-error  any other ReproError escaping the run

``missing-store`` is a *refinement* of ``mismatch``: it is reported
only when **all** diverged words are untouched, which is the signature
of a lost store queue entry rather than a wrong ALU result.

Memory comparison is bit-simple because every substrate works on the
same :class:`~repro.memory.image.MemoryImage` float64 words; the only
subtlety is NaN (a correct engine reproduces a NaN store, but
``nan != nan``), handled by :func:`compare_images`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.cache import CompileCache, cached_optimize_kernel
from repro.engine import create_engine
from repro.fuzz.generate import FuzzCase
from repro.interp import interpret
from repro.ir.kernel import Kernel
from repro.resilience.errors import (
    CompileError,
    MappingError,
    ReproError,
    SimulationHangError,
)
from repro.resilience.watchdog import WatchdogConfig
from repro.sgmf.mapping import SGMFUnmappableError

__all__ = [
    "CaseReport",
    "DEFAULT_ENGINES",
    "EngineOutcome",
    "ImageDiff",
    "compare_images",
    "run_case",
]

#: Engines the oracle exercises by default (the three timing machines).
DEFAULT_ENGINES: Tuple[str, ...] = ("fermi", "vgiw", "sgmf")

#: Statuses that do *not* indicate a semantics divergence.
BENIGN_STATUSES = frozenset({"ok", "unmappable"})

#: Generous default cycle budget: fuzz kernels are small, so any run
#: past this is a livelock, not a slow kernel.
DEFAULT_WATCHDOG = WatchdogConfig(max_cycles=5_000_000.0)


# ----------------------------------------------------------------------
# Image comparison
# ----------------------------------------------------------------------
@dataclass
class ImageDiff:
    """Word-level difference between a golden and an observed image."""

    #: no diverged words
    equal: bool
    #: number of diverged words
    words_diverged: int
    #: lowest diverged word address (or None)
    first_addr: Optional[int] = None
    #: diverged words whose observed value still equals the initial
    #: image (stores that never landed)
    missing_store_words: int = 0
    #: up to ``max_samples`` triples ``(addr, golden, got)``
    samples: List[Tuple[int, float, float]] = field(default_factory=list)

    def describe(self) -> str:
        if self.equal:
            return "images identical"
        parts = [
            f"{self.words_diverged} word(s) diverge, "
            f"first at address {self.first_addr}"
        ]
        if self.missing_store_words:
            parts.append(
                f"{self.missing_store_words} of them untouched "
                "(missing stores)"
            )
        for addr, want, got in self.samples:
            parts.append(f"  [{addr}] golden={want!r} got={got!r}")
        return "; ".join(parts[:2]) + (
            "\n" + "\n".join(parts[2:]) if len(parts) > 2 else ""
        )


def compare_images(
    golden: np.ndarray,
    got: np.ndarray,
    initial: Optional[np.ndarray] = None,
    max_samples: int = 8,
) -> ImageDiff:
    """NaN-aware word comparison of two memory images.

    ``initial`` (the pre-launch image) enables the missing-store
    refinement: a diverged word whose observed value equals its initial
    value was never written at all.
    """
    golden = np.asarray(golden, dtype=np.float64)
    got = np.asarray(got, dtype=np.float64)
    if golden.shape != got.shape:
        return ImageDiff(
            equal=False,
            words_diverged=abs(int(golden.size) - int(got.size)),
            first_addr=int(min(golden.size, got.size)),
        )
    neq = (golden != got) & ~(np.isnan(golden) & np.isnan(got))
    diverged = np.flatnonzero(neq)
    if diverged.size == 0:
        return ImageDiff(equal=True, words_diverged=0)
    missing = 0
    if initial is not None:
        initial = np.asarray(initial, dtype=np.float64)
        same_as_initial = (got[diverged] == initial[diverged]) | (
            np.isnan(got[diverged]) & np.isnan(initial[diverged])
        )
        missing = int(np.count_nonzero(same_as_initial))
    samples = [
        (int(a), float(golden[a]), float(got[a]))
        for a in diverged[:max_samples]
    ]
    return ImageDiff(
        equal=False,
        words_diverged=int(diverged.size),
        first_addr=int(diverged[0]),
        missing_store_words=missing,
        samples=samples,
    )


# ----------------------------------------------------------------------
# Outcomes and reports
# ----------------------------------------------------------------------
@dataclass
class EngineOutcome:
    """One engine's verdict for one case."""

    engine: str
    status: str  # ok | mismatch | missing-store | compile-error |
    #              unmappable | hang | runtime-error
    detail: str = ""
    diff: Optional[ImageDiff] = None

    @property
    def benign(self) -> bool:
        return self.status in BENIGN_STATUSES

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "engine": self.engine,
            "status": self.status,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.diff is not None and not self.diff.equal:
            out["words_diverged"] = self.diff.words_diverged
            out["first_addr"] = self.diff.first_addr
        return out


@dataclass
class CaseReport:
    """Full oracle verdict for one fuzz case."""

    seed: int
    kernel_name: str
    n_threads: int
    n_blocks: int
    n_instrs: int
    outcomes: List[EngineOutcome] = field(default_factory=list)

    @property
    def divergent(self) -> bool:
        """True when any engine produced a non-benign outcome."""
        return any(not o.benign for o in self.outcomes)

    @property
    def divergent_engines(self) -> List[str]:
        return [o.engine for o in self.outcomes if not o.benign]

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "kernel": self.kernel_name,
            "n_threads": self.n_threads,
            "blocks": self.n_blocks,
            "instrs": self.n_instrs,
            "divergent": self.divergent,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
def _kernel_size(kernel: Kernel) -> Tuple[int, int]:
    n_instrs = sum(len(b.instrs) for b in kernel.blocks.values())
    return len(kernel.blocks), n_instrs


def _classify_error(exc: ReproError) -> str:
    if isinstance(exc, SGMFUnmappableError):
        return "unmappable"
    if isinstance(exc, SimulationHangError):
        return "hang"
    if isinstance(exc, CompileError):
        return "compile-error"
    if isinstance(exc, MappingError):
        return "compile-error"
    return "runtime-error"


def run_case(
    case: FuzzCase,
    engines: Sequence[str] = DEFAULT_ENGINES,
    watchdog: Optional[WatchdogConfig] = DEFAULT_WATCHDOG,
    compile_cache: Optional[CompileCache] = None,
    check_optimizer: bool = True,
    max_block_visits: int = 1_000_000,
) -> CaseReport:
    """Run ``case`` differentially and classify every engine's outcome.

    The golden image comes from interpreting the raw kernel.  When
    ``check_optimizer`` is on, the optimised kernel is *also*
    interpreted: a divergence there is attributed to the pseudo-engine
    ``"optimizer"`` (a compiler miscompile) and the timing engines are
    still run so the report shows how the miscompile manifests.
    """
    n_blocks, n_instrs = _kernel_size(case.kernel)
    report = CaseReport(
        seed=case.seed,
        kernel_name=case.kernel.name,
        n_threads=case.n_threads,
        n_blocks=n_blocks,
        n_instrs=n_instrs,
    )

    initial = case.build_memory()
    initial_data = initial.data.copy()

    golden = initial.clone()
    interpret(case.kernel, golden, case.params, case.n_threads,
              max_block_visits=max_block_visits)
    golden_data = golden.data

    # -- compiler pipeline (shared by the engines) ---------------------
    try:
        opt_kernel = cached_optimize_kernel(
            case.kernel, params=case.params, cache=compile_cache
        )
        opt_rolled = cached_optimize_kernel(
            case.kernel, params=case.params, unroll=False,
            cache=compile_cache,
        )
    except ReproError as exc:
        report.outcomes.append(EngineOutcome(
            engine="optimizer",
            status=_classify_error(exc),
            detail=f"{type(exc).__name__}: {exc}",
        ))
        return report

    if check_optimizer:
        mem = initial.clone()
        try:
            interpret(opt_kernel, mem, case.params, case.n_threads,
                      max_block_visits=max_block_visits)
        except ReproError as exc:
            report.outcomes.append(EngineOutcome(
                engine="optimizer",
                status=_classify_error(exc),
                detail=f"{type(exc).__name__}: {exc}",
            ))
        else:
            diff = compare_images(golden_data, mem.data, initial_data)
            if not diff.equal:
                status = ("missing-store"
                          if diff.missing_store_words == diff.words_diverged
                          else "mismatch")
                report.outcomes.append(EngineOutcome(
                    engine="optimizer", status=status,
                    detail=diff.describe(), diff=diff,
                ))

    # -- timing engines ------------------------------------------------
    for name in engines:
        kernel = opt_rolled if name == "sgmf" else opt_kernel
        mem = initial.clone()
        run_kwargs: Dict[str, object] = {"watchdog": watchdog}
        if name != "interp":  # the interpreter adapter takes no cache
            run_kwargs["compile_cache"] = compile_cache
        try:
            create_engine(name).run(
                kernel, mem, case.params, case.n_threads, **run_kwargs,
            )
        except ReproError as exc:
            report.outcomes.append(EngineOutcome(
                engine=name,
                status=_classify_error(exc),
                detail=f"{type(exc).__name__}: {exc}",
            ))
            continue
        diff = compare_images(golden_data, mem.data, initial_data)
        if diff.equal:
            report.outcomes.append(EngineOutcome(engine=name, status="ok"))
        else:
            status = ("missing-store"
                      if diff.missing_store_words == diff.words_diverged
                      else "mismatch")
            report.outcomes.append(EngineOutcome(
                engine=name, status=status,
                detail=diff.describe(), diff=diff,
            ))
    return report
