"""Tests for liveness analysis and live-value allocation."""

from repro.compiler import allocate_live_values, analyze_liveness
from repro.ir import KernelBuilder
from repro.kernels import fig1_kernel, loop_sum_kernel, saxpy_kernel


def test_saxpy_has_no_crossing_values():
    # All of saxpy's intermediates are confined to one block: nothing
    # should touch the LVC (this is the core of the paper's Figure 3
    # argument: most values never cross block boundaries).
    lv = allocate_live_values(saxpy_kernel())
    assert lv.ids == {}
    assert all(not f for f in lv.fetches.values())
    assert all(not s for s in lv.spills.values())


def test_entry_live_in_is_empty():
    for kf in (saxpy_kernel, fig1_kernel, loop_sum_kernel):
        k = kf()
        live = analyze_liveness(k)
        assert live.live_in[k.entry] == frozenset()


def test_fig1_v_crosses_and_r_merges():
    k = fig1_kernel()
    live = analyze_liveness(k)
    lv = allocate_live_values(k, live)
    # 'v' (the loaded value) is read by both arms; the result register is
    # read by the merge block.
    crossing = live.crossing_registers()
    assert "r" in crossing
    exit_block = k.exit_blocks()[0]
    assert "r" in live.live_in[exit_block]
    # The dead initial assignment of r must not make it live out of entry.
    assert "r" not in live.live_out["entry"]
    # Non-overlapping live ranges may share an ID (graph colouring).
    assert lv.n_live_values <= len(crossing)


def test_loop_carried_values_are_live():
    k = loop_sum_kernel()
    live = analyze_liveness(k)
    loops_header = [
        n for n, b in k.blocks.items()
        if any(t == n for src in k.blocks.values() for t in src.successors())
        and b.terminator.kind.value == "br"
    ]
    # The accumulator must be live around the back edge.
    assert any("acc" in live.live_in[h] for h in loops_header)


def test_fetch_and_spill_sets_are_consistent():
    for kf in (fig1_kernel, loop_sum_kernel):
        k = kf()
        lv = allocate_live_values(k)
        live = lv.liveness
        for name, block in k.blocks.items():
            # Fetches are read-before-def registers that are live in.
            for reg in lv.fetches[name]:
                assert reg in live.live_in[name]
                assert reg in block.uses_before_def()
            # Spills are definitions that are live out.
            for reg in lv.spills[name]:
                assert reg in block.defs()
                assert reg in live.live_out[name]
            # Every fetched/spilled register has an ID.
            for reg in lv.fetches[name] | lv.spills[name]:
                assert reg in lv.ids


def test_interfering_values_get_distinct_ids():
    # Two registers live simultaneously across the same boundary must
    # not share a live value ID.
    kb = KernelBuilder("two_live", params=["out", "n"])
    a = kb.tid() * 3
    b = kb.tid() * 5
    with kb.if_(kb.tid() < kb.param("n")):
        kb.store(kb.param("out") + kb.tid(), kb.i2f(a + b))
    k = kb.build()
    lv = allocate_live_values(k)
    ids = {lv.ids[r] for r in lv.fetches[k.blocks["entry"].successors()[0]]}
    assert len(ids) == 2  # a and b interfere
