"""Paper Figure 7: speedup of VGIW over a Fermi SM.

Paper result: 0.9x (slowdown) to 11x, average above 3x, with the memory
streaming kernel (CFD's ``time_step``) at the bottom.  Our reduced-scale
runs amortise the per-block pipeline drain far less than the paper's
full-size tiles (DESIGN.md section 5), so the absolute factors are
smaller; the *shape* — compute-heavy and fat-block kernels win, pure
data movement does not — must hold.
"""

from repro.evalharness.experiments import fig7_speedup_vs_fermi
from repro.evalharness.tables import geomean


def bench_fig7(benchmark, suite_runs):
    table = benchmark(fig7_speedup_vs_fermi, suite_runs)
    print()
    print(table.render())

    sps = {
        row[0]: row[3]
        for row in table.rows
        if row[0] not in ("GEOMEAN", "ARITHMEAN")
    }
    gm = geomean(sps.values())
    assert gm > 0.85, f"geomean speedup {gm:.2f}: VGIW must be competitive"
    assert max(sps.values()) > 1.3, "some kernel must show a clear VGIW win"
    # The paper's canonical slowdown case: the CFD data-movement kernel
    # (no memory coalescing on VGIW) must NOT be a VGIW win.
    assert sps["cfd/time_step"] < 1.1
    # Fat-block compute kernels must beat the streaming kernels.
    assert sps["cfd/compute_flux"] > sps["cfd/time_step"]
