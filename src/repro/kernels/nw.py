"""NW — Needleman-Wunsch sequence alignment (Rodinia), paper Table 2:
``needle_cuda_shared_1``/``_2``, 13 basic blocks each.

The score matrix is filled wavefront by wavefront: cell (r, c) needs its
north, west, and north-west neighbours.  Rodinia synchronises diagonals
inside one kernel with ``__syncthreads``; our barrier-free launch
processes exactly one anti-diagonal (the host loops over diagonals, as
the top-level example does), which keeps the launch race-free while
preserving the kernel's per-cell control flow: the three-way maximum is
an if/else chain, as in the original.

``needle_1`` covers the diagonals of the upper-left triangle (diagonal
index counted from the top-left corner), ``needle_2`` those of the
lower-right triangle (counted from the bottom-right corner).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ir import DType, Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage

PENALTY = 10


def _max3_chain(kb: KernelBuilder, diag, up, left):
    """The Rodinia three-way max as an if/else chain (branchy on
    purpose; this is where the kernel's divergence lives)."""
    best = kb.var("best", 0.0)
    with kb.if_(diag >= up):
        kb.assign(best, diag)
    with kb.else_():
        kb.assign(best, up)
    with kb.if_(left > best):
        kb.assign(best, left)
    return best


def _needle_kernel(name: str, lower: bool) -> Kernel:
    """One anti-diagonal update.

    ``d`` is the diagonal index within the triangle; thread ``i`` walks
    the diagonal.  The score matrix has an extra boundary row/column
    (index 0), exactly as in Rodinia.
    """
    kb = KernelBuilder(name, params=["score", "ref", "cols", "d", "len"])
    i = kb.tid()
    cols = kb.param("cols")
    d = kb.param("d")
    with kb.if_(i < kb.param("len")):
        if not lower:
            r = d - i + 1
            c = i + 1
        else:
            # Lower triangle: diagonal d counted after the main one.
            r = cols - 1 - i
            c = d + i + 1
        idx = r * cols + c
        nw_v = kb.load(kb.param("score") + idx - cols - 1)
        n_v = kb.load(kb.param("score") + idx - cols)
        w_v = kb.load(kb.param("score") + idx - 1)
        refv = kb.load(kb.param("ref") + idx)
        best = _max3_chain(
            kb, nw_v + refv, n_v - float(PENALTY), w_v - float(PENALTY)
        )
        kb.store(kb.param("score") + idx, best)
    return kb.build()


def needle1_kernel() -> Kernel:
    return _needle_kernel("needle_cuda_shared_1", lower=False)


def needle2_kernel() -> Kernel:
    return _needle_kernel("needle_cuda_shared_2", lower=True)


def nw_reference_full(ref: np.ndarray, penalty: int) -> np.ndarray:
    """Full dynamic-programming fill (golden model for the example)."""
    rows, cols = ref.shape
    score = np.zeros((rows, cols))
    score[0, :] = -penalty * np.arange(cols)
    score[:, 0] = -penalty * np.arange(rows)
    for r in range(1, rows):
        for c in range(1, cols):
            score[r, c] = max(
                score[r - 1, c - 1] + ref[r, c],
                score[r - 1, c] - penalty,
                score[r, c - 1] - penalty,
            )
    return score


def _prepare(scale: str, seed: int):
    size = pick(scale, 32, 128, 256)  # playable square, +1 boundary
    cols = size + 1
    rng = np.random.default_rng(seed)
    ref = rng.integers(-10, 11, (cols, cols)).astype(float)
    score = np.zeros((cols, cols))
    score[0, :] = -PENALTY * np.arange(cols)
    score[:, 0] = -PENALTY * np.arange(cols)
    return cols, ref, score


def make_needle1_workload(scale: str = "small", seed: int = 101) -> Workload:
    cols, ref, score = _prepare(scale, seed)
    # Fill every diagonal before the one we launch (mid-matrix, longest).
    d = cols - 2  # the longest upper-triangle diagonal
    full = nw_reference_full(ref, PENALTY)
    # Cells strictly before diagonal d (r+c-2 < d) take their final value.
    for r in range(1, cols):
        for c in range(1, cols):
            if (r - 1) + (c - 1) < d:
                score[r, c] = full[r, c]

    expected = score.copy()
    length = d + 1 if d < cols - 1 else 2 * (cols - 1) - d - 1
    length = min(d + 1, cols - 1)
    for i in range(length):
        r, c = d - i + 1, i + 1
        if 1 <= r < cols and 1 <= c < cols:
            expected[r, c] = full[r, c]

    mem = MemoryImage(2 * cols * cols + 64)
    b_score = mem.alloc_array("score", score.ravel())
    b_ref = mem.alloc_array("ref", ref.ravel())
    return Workload(
        name="nw/needle_cuda_shared_1",
        app="NW",
        kernel=needle1_kernel(),
        memory=mem,
        params={"score": b_score, "ref": b_ref, "cols": cols, "d": d,
                "len": length},
        n_threads=length,
        expected={"score": expected.ravel()},
        paper_blocks=13,
    )


def make_needle2_workload(scale: str = "small", seed: int = 102) -> Workload:
    cols, ref, score = _prepare(scale, seed)
    full = nw_reference_full(ref, PENALTY)
    d = 1  # first lower-triangle diagonal: length cols-2
    # All cells at diagonals before this one take their final values.
    for r in range(1, cols):
        for c in range(1, cols):
            if (r - 1) + (c - 1) < (cols - 1) + d - 1:
                score[r, c] = full[r, c]

    length = cols - 1 - d
    expected = score.copy()
    for i in range(length):
        r, c = cols - 1 - i, d + i + 1
        if 1 <= r < cols and 1 <= c < cols:
            expected[r, c] = full[r, c]

    mem = MemoryImage(2 * cols * cols + 64)
    b_score = mem.alloc_array("score", score.ravel())
    b_ref = mem.alloc_array("ref", ref.ravel())
    return Workload(
        name="nw/needle_cuda_shared_2",
        app="NW",
        kernel=needle2_kernel(),
        memory=mem,
        params={"score": b_score, "ref": b_ref, "cols": cols, "d": d,
                "len": length},
        n_threads=length,
        expected={"score": expected.ravel()},
        paper_blocks=13,
    )
