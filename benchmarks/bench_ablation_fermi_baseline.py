"""Ablation: how idealised is the Fermi baseline?

The headline comparison uses an idealised SM: unlimited L1 MSHRs and no
memory-instruction replay.  GPGPU-Sim's GTX480 configuration — which the
paper's evaluation was built on — limits the L1 to 32 outstanding misses
and replays missing memory instructions.  This ablation enables those
constraints and reports how far VGIW's speedups move: it bounds how much
of the gap to the paper's reported 3x average is explained by our more
generous baseline.
"""

from repro.arch import FermiConfig
from repro.compiler.optimize import optimize_kernel
from repro.evalharness.tables import ExperimentTable, geomean
from repro.kernels.registry import make_workload
from repro.simt import FermiSM
from repro.vgiw import VGIWCore

KERNELS = (
    "cfd/time_step",            # streaming: MSHR-sensitive
    "hotspot/hotspot_kernel",   # stencil
    "nn/euclid",                # small compute
    "streamcluster/compute_cost",
)


def bench_ablation_fermi_baseline(benchmark):
    table = ExperimentTable(
        "Ablation", "Fermi baseline: idealised vs GPGPU-Sim-constrained",
        ["Kernel", "VGIW [cyc]", "Fermi ideal [cyc]", "Fermi 32-MSHR [cyc]",
         "Speedup ideal", "Speedup constrained"],
    )

    def run_sweep():
        table.rows.clear()
        ideal_sp, constrained_sp = [], []
        constrained = FermiConfig(l1_mshr_limit=32, miss_replay_cycles=2)
        for name in KERNELS:
            w = make_workload(name, "tiny")
            kernel = optimize_kernel(w.kernel, params=w.params)
            vgiw = VGIWCore().run(
                kernel, w.memory.clone(), w.params, w.n_threads
            )
            ideal = FermiSM().run(
                kernel, w.memory.clone(), w.params, w.n_threads
            )
            tight = FermiSM(constrained).run(
                kernel, w.memory.clone(), w.params, w.n_threads
            )
            sp_i = ideal.cycles / vgiw.cycles
            sp_c = tight.cycles / vgiw.cycles
            ideal_sp.append(sp_i)
            constrained_sp.append(sp_c)
            table.add(name, vgiw.cycles, ideal.cycles, tight.cycles,
                      sp_i, sp_c)
        return ideal_sp, constrained_sp

    ideal_sp, constrained_sp = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    print()
    print(table.render())
    # The constrained baseline can only help VGIW.
    assert geomean(constrained_sp) >= geomean(ideal_sp)
