"""SM — streamcluster ``compute_cost`` (Rodinia), paper Table 2:
6 basic blocks.

For a candidate centre, every thread computes its point's weighted
squared distance and, if opening the centre would be cheaper than the
point's current assignment, records the switch in the per-point
``switch_cost`` array (the original accumulates into a shared cost via
atomics; we keep the per-point decision and let the host reduce, which
preserves the kernel's loop + compare-and-update control flow)."""

from __future__ import annotations

import numpy as np

from repro.ir import Kernel, KernelBuilder
from repro.kernels.base import Workload, pick
from repro.memory import MemoryImage


def compute_cost_kernel() -> Kernel:
    kb = KernelBuilder(
        "compute_cost",
        params=["points", "weights", "center", "cur_cost", "switch_cost",
                "assign", "dims", "n", "cid"],
    )
    i = kb.tid()
    dims = kb.param("dims")
    with kb.if_(i < kb.param("n")):
        acc = kb.var("acc", 0.0)
        base = kb.param("points") + i * dims
        with kb.for_range(0, dims, name="dim") as j:
            diff = kb.load(base + j) - kb.load(kb.param("center") + j)
            kb.assign(acc, acc + diff * diff)
        cost = kb.load(kb.param("weights") + i) * acc
        cur = kb.load(kb.param("cur_cost") + i)
        with kb.if_(cost < cur):
            kb.store(kb.param("switch_cost") + i, cost - cur)
            kb.store(kb.param("assign") + i, kb.param("cid"))
        with kb.else_():
            kb.store(kb.param("switch_cost") + i, 0.0)
    return kb.build()


def make_workload(scale: str = "small", seed: int = 121) -> Workload:
    n = pick(scale, 256, 4096, 16384)
    dims = 8
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dims))
    weights = rng.uniform(0.5, 2.0, n)
    center = rng.normal(size=dims)
    cur_cost = rng.uniform(1.0, 10.0, n)
    assign = np.zeros(n)
    cid = 7

    mem = MemoryImage(n * dims + 4 * n + dims + 64)
    b_pts = mem.alloc_array("points", points.ravel())
    b_w = mem.alloc_array("weights", weights)
    b_c = mem.alloc_array("center", center)
    b_cur = mem.alloc_array("cur_cost", cur_cost)
    b_sw = mem.alloc("switch_cost", n)
    b_as = mem.alloc_array("assign", assign)

    dist = ((points - center) ** 2).sum(axis=1)
    cost = weights * dist
    better = cost < cur_cost
    e_switch = np.where(better, cost - cur_cost, 0.0)
    e_assign = np.where(better, float(cid), 0.0)

    return Workload(
        name="streamcluster/compute_cost",
        app="SM",
        kernel=compute_cost_kernel(),
        memory=mem,
        params={
            "points": b_pts, "weights": b_w, "center": b_c,
            "cur_cost": b_cur, "switch_cost": b_sw, "assign": b_as,
            "dims": dims, "n": n, "cid": cid,
        },
        n_threads=n,
        expected={"switch_cost": e_switch, "assign": e_assign},
        paper_blocks=6,
    )
