"""Tests for interpreter trace collection and result helpers."""

import numpy as np

from repro.interp import interpret
from repro.kernels import loop_sum_kernel, make_fig1_workload
from repro.memory import MemoryImage


def test_trace_records_per_thread_paths():
    kernel, mem, params = make_fig1_workload(n_threads=32)
    result = interpret(kernel, mem, params, 32)
    assert result.n_threads == 32
    assert len(result.traces) == 32
    for trace in result.traces:
        assert trace.blocks[0] == "entry"
        assert trace.blocks[-1] == kernel.exit_blocks()[0]
        assert trace.instructions > 0
        # One load of data plus one store of the result (+merge traffic).
        assert trace.loads >= 1
        assert trace.stores >= 1


def test_visits_of_counts_loop_iterations():
    stride, nt = 4, 8
    rng = np.random.default_rng(2)
    mem = MemoryImage(512)
    bd = mem.alloc_array("data", rng.normal(size=stride * nt))
    count = np.arange(nt) % (stride + 1)
    bc = mem.alloc_array("count", count)
    bo = mem.alloc("out", nt)
    kernel = loop_sum_kernel()
    result = interpret(
        kernel, mem,
        {"data": bd, "count": bc, "out": bo, "stride": stride}, nt,
    )
    # The loop header runs iterations+1 times per thread.
    header = next(n for n in kernel.blocks if n.startswith("loop"))
    for tid in range(nt):
        assert result.visits_of(tid, header) == count[tid] + 1


def test_aggregate_counters_sum_traces():
    kernel, mem, params = make_fig1_workload(n_threads=16)
    result = interpret(kernel, mem, params, 16)
    assert result.total_instructions == sum(
        t.instructions for t in result.traces
    )
    assert result.total_loads == sum(t.loads for t in result.traces)
    assert result.total_stores == sum(t.stores for t in result.traces)
    assert sum(result.block_visits.values()) == sum(
        len(t.blocks) for t in result.traces
    )
