"""The VGIW processor: BBS, CVT, LVC, and the MT-CGRF execution core."""

from repro.vgiw.bbs import (
    BBSStats,
    batch_popcount,
    iter_batch_tids,
    make_batches,
    terminator_batches,
)
from repro.vgiw.core import VGIWCore, VGIWRunResult
from repro.vgiw.cvt import ControlVectorTable, CVTError, CVTStats
from repro.vgiw.mtcgrf import FabricStats, MTCGRFExecutor, ThreadOutcome
from repro.vgiw.visualize import render_timeline

__all__ = [
    "BBSStats",
    "CVTError",
    "CVTStats",
    "ControlVectorTable",
    "FabricStats",
    "MTCGRFExecutor",
    "ThreadOutcome",
    "VGIWCore",
    "VGIWRunResult",
    "batch_popcount",
    "iter_batch_tids",
    "make_batches",
    "render_timeline",
    "terminator_batches",
]
