"""Crash-safe evaluation: atomic I/O, the durable run journal,
worker-crash recovery, and per-kernel wall-clock timeouts.

Companion to ``tests/test_parallel_suite.py`` (which pins the happy
paths of the ``--jobs`` pool); this file kills things on purpose.
See ``docs/resilience.md`` §7.
"""

import json
import os
import pickle

import pytest

from repro.engine import EngineSnapshot
from repro.evalharness.journal import JournalEntry, RunJournal
from repro.evalharness.report import generate_report
from repro.evalharness.runner import (
    KILL_ENV,
    checkpoint_file_for,
    run_kernel,
    run_suite,
)
from repro.resilience import FaultSpec, RetryPolicy, WorkerCrashError
from repro.resilience.atomicio import (
    atomic_pickle,
    atomic_write_bytes,
    atomic_write_text,
)

KERNELS = ["nn/euclid", "bfs/Kernel", "kmeans/invert_mapping"]
SCALE = "tiny"


def _report(suite):
    return generate_report(suite, scale=SCALE)


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted serial sweep; every scenario must match it."""
    suite = run_suite(KERNELS, scale=SCALE)
    return _report(suite)


# ---------------------------------------------------------------------
# atomic I/O (repro.resilience.atomicio)
# ---------------------------------------------------------------------
def test_atomic_write_bytes_and_text(tmp_path):
    p = tmp_path / "sub" / "blob.bin"  # parent dir is created on demand
    atomic_write_bytes(str(p), b"\x00\x01\x02")
    assert p.read_bytes() == b"\x00\x01\x02"
    atomic_write_text(str(p), "after")
    assert p.read_text() == "after"
    assert os.listdir(tmp_path / "sub") == ["blob.bin"]  # no temp litter


def test_atomic_pickle_roundtrip(tmp_path):
    p = tmp_path / "value.pkl"
    atomic_pickle(str(p), {"cycles": 42.0})
    with open(p, "rb") as fh:
        assert pickle.load(fh) == {"cycles": 42.0}


def test_atomic_pickle_unpicklable_leaves_nothing(tmp_path):
    p = tmp_path / "value.pkl"
    with pytest.raises(Exception):
        atomic_pickle(str(p), lambda: None)
    assert os.listdir(tmp_path) == []  # no destination, no temp file


# ---------------------------------------------------------------------
# the journal file itself
# ---------------------------------------------------------------------
def test_journal_roundtrip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    j = RunJournal(path, scale=SCALE)
    j.record("a/b", JournalEntry(run=None, failure=None))
    loaded = RunJournal.load(path)
    assert loaded.scale == SCALE
    assert "a/b" in loaded
    assert loaded.skipped_lines == 0


def test_journal_lines_are_schema_stable(tmp_path):
    path = str(tmp_path / "j.jsonl")
    RunJournal(path, scale=SCALE).record("a/b", JournalEntry())
    lines = [json.loads(l) for l in open(path)]
    assert lines[0]["journal"] == "repro.evalharness.journal"
    assert lines[0]["scale"] == SCALE
    entry = lines[1]
    assert entry["kernel"] == "a/b"
    assert entry["status"] == "ok"
    assert set(entry) == {"v", "kernel", "status", "summary", "payload"}


def test_journal_tolerates_corrupt_lines(tmp_path):
    path = str(tmp_path / "j.jsonl")
    RunJournal(path, scale=SCALE).record("a/b", JournalEntry())
    with open(path, "a") as fh:
        fh.write("{ not json\n")                      # torn / garbage
        fh.write('{"v": 999, "kernel": "x"}\n')       # foreign version
        fh.write('{"v": 1, "kernel": "y", "payload": "AAAA"}\n')  # bad pickle
    loaded = RunJournal.load(path)
    assert list(loaded.entries) == ["a/b"]
    assert loaded.skipped_lines == 3


def test_journal_refuses_scale_mismatch(tmp_path):
    path = str(tmp_path / "j.jsonl")
    RunJournal(path, scale="tiny").flush()
    with pytest.raises(ValueError, match="scale"):
        RunJournal.resume(path, scale="small")


def test_resume_requires_journal_path():
    with pytest.raises(ValueError, match="journal"):
        run_suite(KERNELS[:1], scale=SCALE, resume=True)


# ---------------------------------------------------------------------
# journal + resume through run_suite
# ---------------------------------------------------------------------
def test_journaled_sweep_report_unchanged(tmp_path, baseline):
    path = str(tmp_path / "j.jsonl")
    suite = run_suite(KERNELS, scale=SCALE, journal=path)
    assert _report(suite) == baseline
    assert len(RunJournal.load(path)) == len(KERNELS)


def test_resume_after_parent_death_is_byte_identical(tmp_path, baseline):
    """Simulate a parent killed mid-sweep: keep only the journal's first
    two kernel entries, then resume.  The resumed report must be
    byte-identical and the journal complete afterwards."""
    path = str(tmp_path / "j.jsonl")
    run_suite(KERNELS, scale=SCALE, journal=path)
    lines = open(path).read().splitlines()
    truncated = str(tmp_path / "interrupted.jsonl")
    with open(truncated, "w") as fh:
        fh.write("\n".join(lines[:3]) + "\n")  # header + 2 of 3 kernels

    resumed = run_suite(KERNELS, scale=SCALE, journal=truncated, resume=True)
    assert _report(resumed) == baseline
    assert len(RunJournal.load(truncated)) == len(KERNELS)


def test_resume_with_nothing_to_do_is_byte_identical(tmp_path, baseline):
    path = str(tmp_path / "j.jsonl")
    run_suite(KERNELS, scale=SCALE, journal=path)
    replayed = run_suite(KERNELS, scale=SCALE, journal=path, resume=True)
    assert _report(replayed) == baseline


def test_resume_replays_identical_fault_logs(tmp_path):
    """Satellite (c): the fault spec travels in the worker payload and
    the retry seeds are deterministic, so a resumed sweep reproduces the
    degraded row's fault logs byte for byte."""
    inject = {"bfs/Kernel": FaultSpec(kind="abort", seed=3, rate=1.0)}
    full = run_suite(KERNELS, scale=SCALE, inject=inject)
    assert full.degraded == ["bfs/Kernel"]
    want_logs = json.dumps(full.failure_logs(), sort_keys=True)

    # journal the sweep, then drop the degraded kernel's entry and
    # resume: it re-runs, replaying the identical campaign
    path = str(tmp_path / "j.jsonl")
    run_suite(KERNELS, scale=SCALE, inject=inject, journal=path)
    keep = [l for l in open(path).read().splitlines()
            if '"bfs/Kernel"' not in l]
    truncated = str(tmp_path / "interrupted.jsonl")
    with open(truncated, "w") as fh:
        fh.write("\n".join(keep) + "\n")

    resumed = run_suite(KERNELS, scale=SCALE, inject=inject,
                        journal=truncated, resume=True)
    assert json.dumps(resumed.failure_logs(), sort_keys=True) == want_logs
    assert _report(resumed) == _report(full)


# ---------------------------------------------------------------------
# worker-crash recovery (SIGKILL mid-suite)
# ---------------------------------------------------------------------
def test_suite_survives_worker_sigkill(tmp_path, baseline, monkeypatch):
    """Satellite (a): SIGKILL a pool worker mid-kernel.  The driver
    respawns the pool, requeues the victims, and the finished sweep is
    byte-identical to an uninterrupted serial one."""
    token = tmp_path / "kill.token"
    token.write_text("once")
    monkeypatch.setenv(KILL_ENV, f"bfs/Kernel:{token}")

    journal = str(tmp_path / "j.jsonl")
    suite = run_suite(KERNELS, scale=SCALE, jobs=2, journal=journal)

    assert not token.exists(), "the kill hook never fired"
    assert suite.ok, f"unexpected degraded rows: {suite.degraded}"
    assert _report(suite) == baseline
    assert len(RunJournal.load(journal)) == len(KERNELS)


def test_exhausted_crash_budget_degrades(tmp_path, monkeypatch):
    """A kernel that keeps killing workers becomes a degraded row
    carrying WorkerCrashError instead of looping forever."""
    token = tmp_path / "kill.token"
    token.write_text("once")
    monkeypatch.setenv(KILL_ENV, f"nn/euclid:{token}")

    # max_attempts=1 → a single crash exhausts the budget; a one-kernel
    # sweep keeps the in-flight window at 1, so nothing else is blamed.
    suite = run_suite(["nn/euclid"], scale=SCALE, jobs=2,
                      retry=RetryPolicy(max_attempts=1))
    assert suite.degraded == ["nn/euclid"]
    failure = suite.failures["nn/euclid"]
    assert failure.error_type == "WorkerCrashError"
    assert "worker process died" in failure.message


def test_worker_crash_propagates_without_isolation(tmp_path, monkeypatch):
    token = tmp_path / "kill.token"
    token.write_text("once")
    monkeypatch.setenv(KILL_ENV, f"nn/euclid:{token}")
    with pytest.raises(WorkerCrashError):
        run_suite(["nn/euclid"], scale=SCALE, jobs=2, isolate=False)


# ---------------------------------------------------------------------
# wall-clock timeout + persisted checkpoints
# ---------------------------------------------------------------------
def test_wall_clock_timeout_degrades_kernel():
    suite = run_suite(["nn/euclid"], scale=SCALE, timeout=1e-3)
    assert suite.degraded == ["nn/euclid"]
    failure = suite.failures["nn/euclid"]
    assert failure.error_type == "SimulationHangError"
    assert "wall-clock timeout" in failure.message


def test_run_kernel_persists_checkpoints(tmp_path):
    ckpt_dir = str(tmp_path / "ckpt")
    run_kernel("nn/euclid", scale=SCALE, checkpoint_every=100.0,
               checkpoint_dir=ckpt_dir)
    for engine in ("fermi", "vgiw", "sgmf"):
        path = checkpoint_file_for(ckpt_dir, "nn/euclid", engine)
        snap = EngineSnapshot.load(path)
        assert snap.engine == engine
        assert snap.kernel_name  # self-describing
        assert snap.cycle > 0.0
